package schema

import (
	"fmt"
	"sort"
	"strings"

	"vprof/internal/debuginfo"
)

// Gap is a PC range inside a variable's expected span with no debug
// location: the paper's "not accessible" case, where a caller-saved
// register is spilled across a call and DWARF does not describe the slot.
type Gap struct {
	PCStart, PCEnd int // half-open
}

// VarCoverage reports the debug-location coverage of one schema entry.
type VarCoverage struct {
	Entry Entry
	// Locs is the number of location entries the debug info holds.
	Locs int
	// [SpanStart, SpanEnd) is the expected PC span: the union of the
	// location entries, or the declaring function's range when there are
	// none.
	SpanStart, SpanEnd int
	// Gaps lists the uncovered ranges inside the span (locals only;
	// a global's per-function ranges are each complete by construction).
	Gaps []Gap
	// NoLocation marks variables with no location entries anywhere —
	// exactly the entries Translate silently drops.
	NoLocation bool
}

// Covered returns the fraction of the span PCs covered by locations.
func (v *VarCoverage) Covered() float64 {
	span := v.SpanEnd - v.SpanStart
	if v.NoLocation || span <= 0 {
		return 0
	}
	missing := 0
	for _, g := range v.Gaps {
		missing += g.PCEnd - g.PCStart
	}
	return float64(span-missing) / float64(span)
}

// CoverageReport is the schema/debuginfo coverage verification result: one
// VarCoverage per schema entry, in schema order.
type CoverageReport struct {
	Vars []VarCoverage
}

// Dropped counts entries with no location information at all.
func (r *CoverageReport) Dropped() int {
	n := 0
	for i := range r.Vars {
		if r.Vars[i].NoLocation {
			n++
		}
	}
	return n
}

// GapCount sums the location gaps across all entries.
func (r *CoverageReport) GapCount() int {
	n := 0
	for i := range r.Vars {
		n += len(r.Vars[i].Gaps)
	}
	return n
}

// Verify cross-checks every schema entry against the debug information and
// reports per-variable PC coverage: how many location entries exist, the PC
// span they should cover, the gaps inside that span, and whether the
// variable has no location at all (and would be silently dropped by
// Translate).
func Verify(s *Schema, info *debuginfo.Info) *CoverageReport {
	r := &CoverageReport{Vars: make([]VarCoverage, 0, len(s.Entries))}
	for _, e := range s.Entries {
		v := VarCoverage{Entry: e}
		locs := info.VarEntries(e.Function, e.Variable)
		v.Locs = len(locs)
		if len(locs) == 0 {
			v.NoLocation = true
			// Expected span: the declaring function's whole range.
			// (A global with locations nowhere has no meaningful span.)
			if fr := info.FuncNamed(e.Function); fr != nil {
				v.SpanStart, v.SpanEnd = fr.Entry, fr.End
			}
			r.Vars = append(r.Vars, v)
			continue
		}
		ranges := make([]Gap, len(locs))
		for i, l := range locs {
			ranges[i] = Gap{l.PCStart, l.PCEnd}
		}
		sort.Slice(ranges, func(i, j int) bool { return ranges[i].PCStart < ranges[j].PCStart })
		v.SpanStart = ranges[0].PCStart
		v.SpanEnd = ranges[0].PCEnd
		for _, g := range ranges[1:] {
			if g.PCEnd > v.SpanEnd {
				v.SpanEnd = g.PCEnd
			}
		}
		if e.Function != debuginfo.GlobalScope {
			// Holes between merged ranges are genuine DWARF gaps. For
			// globals the entries are per referencing function; the text
			// between two functions is not a gap.
			covered := ranges[0].PCEnd
			for _, g := range ranges[1:] {
				if g.PCStart > covered {
					v.Gaps = append(v.Gaps, Gap{covered, g.PCStart})
				}
				if g.PCEnd > covered {
					covered = g.PCEnd
				}
			}
		}
		r.Vars = append(r.Vars, v)
	}
	return r
}

// Render prints the report: a summary line, then one line per variable that
// is not fully covered. Output is deterministic (schema order).
func (r *CoverageReport) Render() string {
	var b strings.Builder
	full := 0
	for i := range r.Vars {
		if !r.Vars[i].NoLocation && len(r.Vars[i].Gaps) == 0 {
			full++
		}
	}
	gapped := len(r.Vars) - full - r.Dropped()
	fmt.Fprintf(&b, "schema/DWARF coverage: %d variables, %d fully covered, %d with location gaps, %d without location info\n",
		len(r.Vars), full, gapped, r.Dropped())
	for i := range r.Vars {
		v := &r.Vars[i]
		switch {
		case v.NoLocation:
			fmt.Fprintf(&b, "  %s.%s: NO location info (expected pc 0x%x-0x%x); silently dropped by translation\n",
				v.Entry.Function, v.Entry.Variable, v.SpanStart, v.SpanEnd)
		case len(v.Gaps) > 0:
			parts := make([]string, len(v.Gaps))
			for j, g := range v.Gaps {
				parts[j] = fmt.Sprintf("0x%x-0x%x", g.PCStart, g.PCEnd)
			}
			fmt.Fprintf(&b, "  %s.%s: %d location entries, %.0f%% of pc 0x%x-0x%x covered, gaps at %s\n",
				v.Entry.Function, v.Entry.Variable, v.Locs, 100*v.Covered(),
				v.SpanStart, v.SpanEnd, strings.Join(parts, ", "))
		}
	}
	return b.String()
}
