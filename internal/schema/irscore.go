package schema

import (
	"vprof/internal/absint"
	"vprof/internal/cfa"
	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
)

// irInfo is the IR-level evidence the scorer works from: one control/data
// flow analysis per user function plus the never-varies / never-read facts
// used for constant-propagation and dead-variable pruning.
type irInfo struct {
	analyses map[string]*cfa.FuncAnalysis
	constant map[string]bool // Entry.Key() -> value never varies
	dead     map[string]bool // Entry.Key() -> value never read
}

// buildIR analyzes every non-synthetic function of the compiled program.
func (g *generator) buildIR() {
	ir := &irInfo{analyses: map[string]*cfa.FuncAnalysis{}}
	for _, fn := range g.prog.Funcs {
		if fn.Synthetic {
			continue
		}
		if a := cfa.AnalyzeFunc(g.prog, fn); a != nil {
			ir.analyses[fn.Name] = a
		}
	}
	ir.constant, ir.dead = varFacts(g.prog)
	g.ir = ir
}

// applyIRInduction tags loop induction variables detected on the IR: for
// each natural loop, the variables written inside the loop and read by its
// exit condition (cfa.FuncAnalysis.InductionVars). This subsumes the AST
// heuristic — it additionally sees induction through if-break exits of
// for(;;) loops — and respects the same FuncFilter/SkipGlobals rules.
func (g *generator) applyIRInduction(opts Options) {
	if g.ir == nil {
		g.buildIR()
	}
	for _, fn := range g.prog.Funcs {
		if fn.Synthetic {
			continue
		}
		if opts.FuncFilter != nil && !opts.FuncFilter(fn.Name) {
			continue
		}
		a := g.ir.analyses[fn.Name]
		if a == nil {
			continue
		}
		for _, iv := range a.InductionVars() {
			name, isGlobal := a.VarName(iv.Var)
			if name == "" {
				continue
			}
			if isGlobal {
				if _, monitored := g.found[debuginfo.GlobalScope+"\x00"+name]; !monitored {
					continue // SkipGlobals stays in force
				}
				g.found[debuginfo.GlobalScope+"\x00"+name].Tags |= TagLoop
				continue
			}
			line := 0
			if iv.Var < len(fn.SlotLines) {
				line = fn.SlotLines[iv.Var]
			}
			g.ensure(fn.Name, name, line).Tags |= TagLoop
		}
	}
}

// scoreEntries assigns each entry its performance-relevance score:
//
//	score = tagWeight × (1 + deepest loop-nesting depth of any access)
//
// where tagWeight = 1 + 2·loop + 1·cond + 1·args. Variables whose value
// never varies (constant propagation: every store writes the same literal)
// or that are never read (dead) score 0 — monitoring them cannot correlate
// with cost. Without IR the score degrades to the plain tag weight.
func (g *generator) scoreEntries(s *Schema) {
	for i := range s.Entries {
		e := &s.Entries[i]
		w := 1.0
		if e.Tags.Has(TagLoop) {
			w += 2
		}
		if e.Tags.Has(TagCond) {
			w += 1
		}
		if e.Tags.Has(TagArgs) {
			w += 1
		}
		if g.ir == nil {
			e.Score = w
			continue
		}
		if g.ir.constant[e.Key()] || g.ir.dead[e.Key()] {
			e.Score = 0
			continue
		}
		e.Score = w * float64(1+g.accessDepth(e))
	}
}

// applyStaticPriors folds the abstract interpreter's evidence into the
// relevance scores (Options.StaticPriors): a variable that names a symbolic
// loop trip bound directly scales iteration counts, and one feeding a
// work()/block() argument is CPU or wall time — both double. A variable
// every reachable abstract state pins to one constant cannot correlate with
// cost and halves. The multipliers are powers of two, exact in float64, so
// scoring stays deterministic across platforms.
func (g *generator) applyStaticPriors(s *Schema) {
	priors := absint.AnalyzeProgram(g.prog).Priors()
	for i := range s.Entries {
		e := &s.Entries[i]
		if e.Score == 0 {
			continue
		}
		p, ok := priors[e.Key()]
		if !ok {
			continue
		}
		if p.TripBound {
			e.Score *= 2
		}
		if p.FeedsWork {
			e.Score *= 2
		}
		if p.Singleton && !p.TripBound && !p.FeedsWork {
			e.Score *= 0.5
		}
	}
}

// accessDepth returns the deepest loop nesting in which the entry's
// variable is loaded or stored. Globals are checked across every function
// in the program: their runtime behavior does not depend on FuncFilter.
func (g *generator) accessDepth(e *Entry) int {
	if e.Function == debuginfo.GlobalScope {
		gi, ok := g.prog.GlobalIndex(e.Variable)
		if !ok {
			return 0
		}
		max := 0
		for _, fn := range g.prog.Funcs {
			a := g.ir.analyses[fn.Name]
			if a == nil {
				continue
			}
			if d := a.MaxAccessDepth(a.GlobalVar(gi)); d > max {
				max = d
			}
		}
		return max
	}
	a := g.ir.analyses[e.Function]
	if a == nil {
		return 0
	}
	max := 0
	for slot, name := range a.Fn.SlotNames {
		if name != e.Variable {
			continue
		}
		if d := a.MaxAccessDepth(slot); d > max {
			max = d
		}
	}
	return max
}

// varFacts scans the program for two prunable classes of variables, keyed
// like Entry.Key():
//
//   - constant: every store writes the same literal value (or the variable
//     is never stored at all) — its value never varies at runtime;
//   - dead: the variable is never loaded.
//
// A source name covering several slots (shadowed redeclarations) gets the
// facts only if every slot of that name has them. Parameters are never
// constant — their value arrives from the caller.
func varFacts(prog *compiler.Program) (constant, dead map[string]bool) {
	constant = map[string]bool{}
	dead = map[string]bool{}
	and := func(m map[string]bool, key string, v bool) {
		if prev, seen := m[key]; seen {
			m[key] = prev && v
		} else {
			m[key] = v
		}
	}

	for _, fn := range prog.Funcs {
		if fn.Synthetic {
			continue
		}
		for slot, name := range fn.SlotNames {
			if name == "" {
				continue
			}
			key := fn.Name + "\x00" + name
			c, d := slotFacts(prog, fn, slot)
			and(constant, key, c)
			and(dead, key, d)
		}
	}

	for gi, name := range prog.GlobalNames {
		key := debuginfo.GlobalScope + "\x00" + name
		c, d := globalFacts(prog, gi)
		constant[key] = c
		dead[key] = d
	}
	return constant, dead
}

// slotFacts inspects one frame slot of one function.
func slotFacts(prog *compiler.Program, fn *compiler.FuncInfo, slot int) (constant, dead bool) {
	constant = slot >= fn.NumParams
	dead = true
	stores := 0
	var value int64
	for pc := fn.Entry; pc < fn.End; pc++ {
		ins := prog.Instrs[pc]
		if int(ins.A) != slot {
			continue
		}
		switch ins.Op {
		case compiler.OpLoadL:
			dead = false
		case compiler.OpStoreL:
			v, isConst := constOperand(prog, fn.Entry, pc)
			if !isConst || (stores > 0 && v != value) {
				constant = false
			}
			value = v
			stores++
		}
	}
	if stores == 0 {
		constant = false // parameters, or nothing to fold
	}
	return constant, dead
}

// globalFacts inspects one global across the whole program, including the
// synthetic __init initializer. A global with no stores anywhere holds its
// zero value forever and counts as constant.
func globalFacts(prog *compiler.Program, gi int) (constant, dead bool) {
	constant, dead = true, true
	stores := 0
	var value int64
	for pc := 0; pc < len(prog.Instrs); pc++ {
		ins := prog.Instrs[pc]
		if int(ins.A) != gi {
			continue
		}
		switch ins.Op {
		case compiler.OpLoadG:
			dead = false
		case compiler.OpStoreG:
			v, isConst := constOperand(prog, 0, pc)
			if !isConst || (stores > 0 && v != value) {
				constant = false
			}
			value = v
			stores++
		}
	}
	return constant, dead
}

// constOperand reports whether the value stored at pc is a literal: the
// instruction just before the store pushed it with OpConst.
func constOperand(prog *compiler.Program, lo, pc int) (int64, bool) {
	if pc <= lo {
		return 0, false
	}
	prev := prog.Instrs[pc-1]
	if prev.Op != compiler.OpConst {
		return 0, false
	}
	return prog.Consts[prev.A], true
}
