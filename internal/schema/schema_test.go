package schema_test

import (
	"strings"
	"testing"

	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
	"vprof/internal/lang"
	"vprof/internal/schema"
)

// The paper's Figure 1 shape: a global, a derived local used in a condition
// and as a call argument, and a loop.
const recoverySrc = `
var recv_n_pool_free_frames;
var srv_page_size = 4096;

func buf_pool_get_n_pages() {
	return input(0);
}

func recv_sys_init() {
	recv_n_pool_free_frames = buf_pool_get_n_pages() / 3;
}

func recv_scan_log_recs(available_mem) {
	if (available_mem <= 0) {
		return false;
	}
	work(50);
	return true;
}

func recv_group_scan_log_recs(checkpoint_lsn) {
	var available_mem = srv_page_size * (buf_pool_get_n_pages() - recv_n_pool_free_frames);
	var end_lsn = 0;
	var start_lsn = checkpoint_lsn;
	while (end_lsn != start_lsn && !recv_scan_log_recs(available_mem)) {
		end_lsn = end_lsn + 10;
	}
	return true;
}

func main() {
	recv_sys_init();
	recv_group_scan_log_recs(7);
}
`

func gen(t *testing.T, src string, opts schema.Options) (*schema.Schema, *lang.File) {
	t.Helper()
	f, err := lang.Parse("log0recv.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	return schema.Generate(f, opts), f
}

func TestGenerateGlobals(t *testing.T) {
	s, _ := gen(t, recoverySrc, schema.Options{})
	for _, name := range []string{"recv_n_pool_free_frames", "srv_page_size"} {
		e := s.Lookup(debuginfo.GlobalScope, name)
		if e == nil {
			t.Errorf("global %s not in schema", name)
		}
	}
}

func TestGenerateCondAndArgsTags(t *testing.T) {
	s, _ := gen(t, recoverySrc, schema.Options{})
	// available_mem in recv_group_scan_log_recs: used in while condition
	// via the call and passed as a call argument -> cond|args.
	e := s.Lookup("recv_group_scan_log_recs", "available_mem")
	if e == nil {
		t.Fatal("available_mem not monitored")
	}
	if !e.Tags.Has(schema.TagCond) || !e.Tags.Has(schema.TagArgs) {
		t.Errorf("available_mem tags = %v, want cond|args", e.Tags)
	}
	// checkpoint_lsn is a formal parameter -> args.
	p := s.Lookup("recv_group_scan_log_recs", "checkpoint_lsn")
	if p == nil || !p.Tags.Has(schema.TagArgs) {
		t.Errorf("checkpoint_lsn = %+v, want args tag", p)
	}
	// The parameter of recv_scan_log_recs is used in an if condition.
	q := s.Lookup("recv_scan_log_recs", "available_mem")
	if q == nil || !q.Tags.Has(schema.TagCond) {
		t.Errorf("recv_scan_log_recs.available_mem = %+v, want cond", q)
	}
}

func TestGenerateLoopInduction(t *testing.T) {
	s, _ := gen(t, recoverySrc, schema.Options{})
	e := s.Lookup("recv_group_scan_log_recs", "end_lsn")
	if e == nil {
		t.Fatal("end_lsn not monitored")
	}
	if !e.Tags.Has(schema.TagLoop) {
		t.Errorf("end_lsn tags = %v, want loop", e.Tags)
	}
	// start_lsn is in the condition but never assigned in the loop:
	// cond only, no loop tag.
	st := s.Lookup("recv_group_scan_log_recs", "start_lsn")
	if st == nil || st.Tags.Has(schema.TagLoop) || !st.Tags.Has(schema.TagCond) {
		t.Errorf("start_lsn = %+v, want cond without loop", st)
	}
}

func TestGenerateForLoop(t *testing.T) {
	s, _ := gen(t, `
func main() {
	var n = input(0);
	for (var i = 0; i < n; i++) {
		work(1);
	}
}`, schema.Options{})
	e := s.Lookup("main", "i")
	if e == nil || !e.Tags.Has(schema.TagLoop) || !e.Tags.Has(schema.TagCond) {
		t.Errorf("for induction var i = %+v, want loop|cond", e)
	}
}

func TestUntaggedLocalsExcluded(t *testing.T) {
	s, _ := gen(t, `
func main() {
	var plain = 42;
	var used = 1;
	if (used > 0) { work(1); }
}`, schema.Options{})
	if e := s.Lookup("main", "plain"); e != nil {
		t.Errorf("plain local monitored: %+v", e)
	}
	if e := s.Lookup("main", "used"); e == nil {
		t.Error("conditional variable not monitored")
	}
}

func TestPointerType(t *testing.T) {
	s, _ := gen(t, `
func main() {
	var block = alloc();
	if (block != 0) { work(1); }
	var n = 3;
	if (n > 0) { work(1); }
}`, schema.Options{})
	if e := s.Lookup("main", "block"); e == nil || e.Type != "ptr" {
		t.Errorf("block = %+v, want type ptr", e)
	}
	if e := s.Lookup("main", "n"); e == nil || e.Type != "int" {
		t.Errorf("n = %+v, want type int", e)
	}
}

func TestFuncFilter(t *testing.T) {
	s, _ := gen(t, recoverySrc, schema.Options{
		FuncFilter: func(name string) bool { return name == "recv_group_scan_log_recs" },
	})
	if e := s.Lookup("recv_scan_log_recs", "available_mem"); e != nil {
		t.Errorf("filtered function's local monitored: %+v", e)
	}
	if e := s.Lookup("recv_group_scan_log_recs", "available_mem"); e == nil {
		t.Error("selected function's local missing")
	}
	// Globals remain monitored regardless of filter.
	if e := s.Lookup(debuginfo.GlobalScope, "srv_page_size"); e == nil {
		t.Error("global dropped by function filter")
	}
}

func TestSkipGlobals(t *testing.T) {
	s, _ := gen(t, recoverySrc, schema.Options{SkipGlobals: true})
	if e := s.Lookup(debuginfo.GlobalScope, "srv_page_size"); e != nil {
		t.Error("global present despite SkipGlobals")
	}
}

func TestSchemaFormat(t *testing.T) {
	s, _ := gen(t, recoverySrc, schema.Options{})
	text := schema.Format(s)
	if !strings.Contains(text, "log0recv.vp, #global") {
		t.Errorf("format lacks global entry:\n%s", text)
	}
	if !strings.Contains(text, "available_mem, int, cond|args") {
		t.Errorf("format lacks tagged entry:\n%s", text)
	}
}

func TestTranslate(t *testing.T) {
	s, f := gen(t, recoverySrc, schema.Options{})
	p, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	metas := schema.Translate(s, p.Debug)
	if len(metas) == 0 {
		t.Fatal("no metadata produced")
	}
	// Every metadata entry must correspond to a schema entry.
	for _, m := range metas {
		if s.Lookup(m.Func, m.Name) == nil {
			t.Errorf("metadata for unmonitored variable %s.%s", m.Func, m.Name)
		}
	}
	// available_mem must be locatable (it is an early local -> callee-saved).
	found := false
	for _, m := range metas {
		if m.Func == "recv_group_scan_log_recs" && m.Name == "available_mem" {
			found = true
			if m.Loc != debuginfo.LocReg {
				t.Errorf("available_mem loc = %v, want register", m.Loc)
			}
		}
	}
	if !found {
		t.Error("available_mem has no metadata")
	}
	// Globals translate to memory entries scoped to referencing functions.
	var globalRanges int
	for _, m := range metas {
		if m.Func == debuginfo.GlobalScope && m.Name == "recv_n_pool_free_frames" {
			globalRanges++
			if m.Loc != debuginfo.LocMem {
				t.Errorf("global metadata wrong: %+v", m)
			}
			fn := p.Debug.FuncAt(m.PCStart)
			if fn == nil || (fn.Name != "recv_sys_init" && fn.Name != "recv_group_scan_log_recs") {
				t.Errorf("global range in unexpected function: %+v", m)
			}
		}
	}
	if globalRanges != 2 {
		t.Errorf("recv_n_pool_free_frames has %d ranges, want 2 (its referencing functions)", globalRanges)
	}
}

func TestTagString(t *testing.T) {
	if got := (schema.TagCond | schema.TagArgs).String(); got != "cond|args" {
		t.Errorf("got %q", got)
	}
	if got := schema.TagNone.String(); got != "None" {
		t.Errorf("got %q", got)
	}
	if got := (schema.TagLoop | schema.TagCond | schema.TagArgs).String(); got != "loop|cond|args" {
		t.Errorf("got %q", got)
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s, _ := gen(t, recoverySrc, schema.Options{})
	// The scored 7-field form round-trips entries exactly.
	text := schema.FormatScored(s)
	parsed, err := schema.Parse(strings.NewReader("# header comment\n\n" + text))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Entries) != len(s.Entries) {
		t.Fatalf("round trip: %d entries, want %d", len(parsed.Entries), len(s.Entries))
	}
	for i := range s.Entries {
		if parsed.Entries[i] != s.Entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, parsed.Entries[i], s.Entries[i])
		}
	}
	// The unscored 6-field form drops only the score.
	parsed6, err := schema.Parse(strings.NewReader(schema.Format(s)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Entries {
		e := s.Entries[i]
		e.Score = 0
		if parsed6.Entries[i] != e {
			t.Fatalf("6-field entry %d: %+v != %+v", i, parsed6.Entries[i], e)
		}
	}
}

func TestSchemaParseErrors(t *testing.T) {
	cases := []string{
		"too,few,fields",
		"f.vp, main, NaN, x, int, cond",
		"f.vp, main, 3, x, int, bogus|cond",
	}
	for _, c := range cases {
		if _, err := schema.Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
}

func TestParseTags(t *testing.T) {
	cases := map[string]schema.Tag{
		"None":           schema.TagNone,
		"":               schema.TagNone,
		"loop":           schema.TagLoop,
		"cond|args":      schema.TagCond | schema.TagArgs,
		"loop|cond|args": schema.TagLoop | schema.TagCond | schema.TagArgs,
	}
	for in, want := range cases {
		got, err := schema.ParseTags(in)
		if err != nil || got != want {
			t.Errorf("ParseTags(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}
