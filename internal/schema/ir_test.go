package schema_test

import (
	"strings"
	"testing"

	"vprof/internal/bugs"
	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
	"vprof/internal/diag"
	"vprof/internal/lang"
	"vprof/internal/schema"
)

// --- IR-vs-AST cross-check on every evaluation workload ---

// TestIRMatchesASTOnWorkloads verifies that moving induction detection from
// the AST heuristic to the IR dominator analysis changes nothing on the 18
// evaluation workloads (b1–b15, u1–u3, including the alternate normal
// versions): same entries, same tags, same lines. The IR analysis is a
// strict superset only for for(;;)+break shapes, which no workload uses.
func TestIRMatchesASTOnWorkloads(t *testing.T) {
	all := append(bugs.All(), bugs.UnresolvedIssues()...)
	if len(all) != 18 {
		t.Fatalf("expected 18 workloads, got %d", len(all))
	}
	checked := 0
	for _, w := range all {
		b, err := w.Build()
		if err != nil {
			t.Fatalf("%s: %v", w.ID, err)
		}
		sources := map[string]string{w.ID + "/buggy": b.BuggySource}
		if b.NormalSource != b.BuggySource {
			sources[w.ID+"/normal"] = b.NormalSource
		}
		for label, src := range sources {
			f, err := lang.Parse(w.SourceFile, src)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			p, err := compiler.Compile(f)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			ir := schema.GenerateIR(f, p, schema.Options{})
			ast := schema.Generate(f, schema.Options{DisableIR: true})
			if len(ir.Entries) != len(ast.Entries) {
				t.Errorf("%s: IR %d entries, AST %d", label, len(ir.Entries), len(ast.Entries))
				continue
			}
			for i := range ir.Entries {
				a, b := ir.Entries[i], ast.Entries[i]
				a.Score, b.Score = 0, 0 // scores differ by design (depth weighting)
				if a != b {
					t.Errorf("%s: entry %d differs:\n  IR:  %+v\n  AST: %+v", label, i, a, b)
				}
			}
			checked++
		}
	}
	if checked < 18 {
		t.Fatalf("cross-checked only %d sources", checked)
	}
}

// --- satellite edge cases ---

func TestSkipGlobalsTagInterplay(t *testing.T) {
	// A global that is cond-used AND an IR-detected induction variable
	// must stay out of the schema under SkipGlobals.
	src := `
var g_mode;
func main() {
	if (g_mode > 0) { work(1); }
	while (g_mode < 10) { g_mode = g_mode + 1; }
}`
	s, _ := gen(t, src, schema.Options{SkipGlobals: true})
	if e := s.Lookup(debuginfo.GlobalScope, "g_mode"); e != nil {
		t.Errorf("SkipGlobals violated by tagging: %+v", e)
	}
	s2, _ := gen(t, src, schema.Options{})
	e := s2.Lookup(debuginfo.GlobalScope, "g_mode")
	if e == nil || !e.Tags.Has(schema.TagCond|schema.TagLoop) {
		t.Errorf("g_mode = %+v, want cond|loop", e)
	}
}

func TestFuncFilterGlobalTaggedElsewhere(t *testing.T) {
	// Both globals are induction variables, each in its own function. With
	// only fb selected, ga keeps its entry (globals always monitored) but
	// must not receive tags from the excluded function's loops.
	src := `
var ga;
var gb;
func fa() { while (ga < 10) { ga = ga + 1; } }
func fb() { while (gb < 10) { gb = gb + 1; } }
func main() { fa(); fb(); }`
	s, _ := gen(t, src, schema.Options{
		FuncFilter: func(name string) bool { return name == "fb" || name == "main" },
	})
	ea := s.Lookup(debuginfo.GlobalScope, "ga")
	if ea == nil || ea.Tags != schema.TagNone {
		t.Errorf("ga = %+v, want entry with no tags (its loops are filtered out)", ea)
	}
	eb := s.Lookup(debuginfo.GlobalScope, "gb")
	if eb == nil || !eb.Tags.Has(schema.TagCond|schema.TagLoop) {
		t.Errorf("gb = %+v, want cond|loop", eb)
	}
}

func TestEmptyCondForLoop(t *testing.T) {
	// for(;;) with an if-break: the IR analysis sees the break condition
	// as the loop's conditional exit and tags x as induction; the AST
	// heuristic sees no loop condition and cannot.
	src := `
func main() {
	var x = input(0);
	for (;;) {
		x = x - 1;
		if (x < 0) { break; }
	}
}`
	s, _ := gen(t, src, schema.Options{})
	e := s.Lookup("main", "x")
	if e == nil || !e.Tags.Has(schema.TagLoop) {
		t.Errorf("IR path: x = %+v, want loop tag via break condition", e)
	}
	ast, _ := gen(t, src, schema.Options{DisableIR: true})
	if e := ast.Lookup("main", "x"); e == nil || e.Tags.Has(schema.TagLoop) {
		t.Errorf("AST path: x = %+v, want cond without loop", e)
	}
}

func TestBuiltinNameIdentsInCallArgs(t *testing.T) {
	// Builtin function names inside call expressions are not identifiers
	// and must never produce schema entries; a local shadowing a builtin
	// name is an ordinary variable.
	src := `
func main() {
	var n = input(0);
	out(min(n, 5));
	var max = input(1);
	if (max > n) { out(max); }
}`
	s, _ := gen(t, src, schema.Options{})
	for _, name := range []string{"min", "out", "input"} {
		if e := s.Lookup(debuginfo.GlobalScope, name); e != nil {
			t.Errorf("builtin %q monitored as global: %+v", name, e)
		}
	}
	if e := s.Lookup("main", "min"); e != nil {
		t.Errorf("builtin name monitored as local: %+v", e)
	}
	if e := s.Lookup("main", "n"); e == nil || !e.Tags.Has(schema.TagArgs) {
		t.Errorf("n = %+v, want args tag", e)
	}
	if e := s.Lookup("main", "max"); e == nil || !e.Tags.Has(schema.TagCond|schema.TagArgs) {
		t.Errorf("local max = %+v, want cond|args", e)
	}
}

func TestScopeAwareResolution(t *testing.T) {
	// The if condition reads the GLOBAL counter: the local declaration
	// appears later, inside the then-block's scope. The old resolver
	// attributed any identifier to the first same-named DeclStmt anywhere
	// in the function, wrongly tagging the local instead of the global.
	src := `
var counter;
func tick() {
	if (counter > 0) {
		var counter = 1;
		work(counter);
	}
}
func main() { tick(); }`
	s, _ := gen(t, src, schema.Options{})
	g := s.Lookup(debuginfo.GlobalScope, "counter")
	if g == nil || !g.Tags.Has(schema.TagCond) {
		t.Errorf("global counter = %+v, want cond tag (condition precedes the shadowing decl)", g)
	}
	l := s.Lookup("tick", "counter")
	if l == nil || !l.Tags.Has(schema.TagArgs) || l.Tags.Has(schema.TagCond) {
		t.Errorf("local counter = %+v, want args without cond", l)
	}
	if l != nil && l.Line != 5 {
		t.Errorf("local counter line = %d, want 5 (the inner declaration)", l.Line)
	}
}

// --- relevance scoring and pruning ---

const scoringSrc = `
var pool_cap = 100;

func main() {
	var n = input(0);
	var total = 0;
	if (pool_cap > 0) { work(1); }
	for (var i = 0; i < n; i++) {
		for (var j = 0; j < i; j++) {
			total = total + 1;
		}
	}
	out(total);
}`

func TestScoreLoopDepthWeighting(t *testing.T) {
	s, _ := gen(t, scoringSrc, schema.Options{})
	score := func(fn, name string) float64 {
		t.Helper()
		e := s.Lookup(fn, name)
		if e == nil {
			t.Fatalf("%s.%s missing", fn, name)
		}
		return e.Score
	}
	// i: loop|cond weight 4, deepest access in the inner condition
	// (j < i, depth 2) -> 4 * 3 = 12. Same for j.
	if got := score("main", "i"); got != 12 {
		t.Errorf("score(i) = %v, want 12", got)
	}
	if got := score("main", "j"); got != 12 {
		t.Errorf("score(j) = %v, want 12", got)
	}
	// n: cond weight 2, accessed at depth 1 -> 4.
	if got := score("main", "n"); got != 4 {
		t.Errorf("score(n) = %v, want 4", got)
	}
	// total: args weight 2, written at depth 2 -> 6.
	if got := score("main", "total"); got != 6 {
		t.Errorf("score(total) = %v, want 6", got)
	}
	// pool_cap never varies (only the initializer stores it): pruned to 0
	// despite its cond tag.
	if got := score(debuginfo.GlobalScope, "pool_cap"); got != 0 {
		t.Errorf("score(pool_cap) = %v, want 0 (constant)", got)
	}
}

func TestScoreDeadVariable(t *testing.T) {
	s, _ := gen(t, `
var sink;
func main() {
	sink = input(0);
	work(sink + 0);
	var unread = input(1);
	out(7);
	if (input(2) > unread) { work(1); }
}`, schema.Options{})
	// sink is read (work(sink+0)): not dead.
	if e := s.Lookup(debuginfo.GlobalScope, "sink"); e == nil || e.Score == 0 {
		t.Errorf("sink = %+v, want nonzero score", e)
	}
	// unread is loaded in the comparison, so it is live too; flip to a
	// truly dead one below.
	s2, _ := gen(t, `
var ghost;
func main() {
	ghost = input(0);
	if (input(1) > 0) { work(1); }
}`, schema.Options{})
	if e := s2.Lookup(debuginfo.GlobalScope, "ghost"); e == nil || e.Score != 0 {
		t.Errorf("ghost = %+v, want score 0 (stored but never read)", e)
	}
}

func TestMinScorePruning(t *testing.T) {
	full, _ := gen(t, scoringSrc, schema.Options{})
	s, _ := gen(t, scoringSrc, schema.Options{MinScore: 5})
	if s.Lookup("main", "i") == nil || s.Lookup("main", "j") == nil || s.Lookup("main", "total") == nil {
		t.Fatalf("high-score entries pruned: %v", s.Entries)
	}
	if s.Lookup("main", "n") != nil {
		t.Error("n (score 4) survived MinScore 5")
	}
	if s.Lookup(debuginfo.GlobalScope, "pool_cap") != nil {
		t.Error("constant global survived MinScore")
	}
	if want := len(full.Entries) - len(s.Entries); s.Pruned != want {
		t.Errorf("Pruned = %d, want %d", s.Pruned, want)
	}
}

func TestMaxEntriesDeterministic(t *testing.T) {
	s, _ := gen(t, scoringSrc, schema.Options{MaxEntries: 2})
	if len(s.Entries) != 2 {
		t.Fatalf("MaxEntries ignored: %d entries", len(s.Entries))
	}
	// Top two by score are i and j (12 each; ties break on name), and the
	// output stays in canonical function/variable order.
	if s.Entries[0].Variable != "i" || s.Entries[1].Variable != "j" {
		t.Errorf("kept %s, %s; want i, j", s.Entries[0].Variable, s.Entries[1].Variable)
	}
	if s.Pruned == 0 {
		t.Error("Pruned not recorded")
	}
	// Byte-identical output across repeated generation.
	first := schema.FormatScored(s)
	for run := 0; run < 5; run++ {
		again, _ := gen(t, scoringSrc, schema.Options{MaxEntries: 2})
		if got := schema.FormatScored(again); got != first {
			t.Fatalf("run %d: pruned schema not deterministic:\n%s\nvs\n%s", run, got, first)
		}
	}
}

func TestLookupAfterMutation(t *testing.T) {
	// The lookup index rebuilds when the entry slice is replaced.
	s, _ := gen(t, scoringSrc, schema.Options{})
	if s.Lookup("main", "i") == nil {
		t.Fatal("i missing")
	}
	s.Entries = append([]schema.Entry(nil), s.Entries[:1]...)
	if got := s.Lookup(s.Entries[0].Function, s.Entries[0].Variable); got == nil {
		t.Error("lookup failed after truncation")
	}
	if len(s.Entries) == 1 && s.Lookup("main", "definitely-absent") != nil {
		t.Error("phantom entry found")
	}
}

// --- coverage verification ---

// spillSrc forces both DWARF failure modes: slot 8 (the 9th parameter) is a
// stack spill with no location entries at all, and slots 4..7 are
// caller-saved registers whose location entries break at the helper() call.
const spillSrc = `
func helper(x) { return x + 1; }

func spill(a0, a1, a2, a3, a4, a5, a6, a7, a8) {
	if (a8 > 0) { work(helper(a4)); }
	if (a5 > a0) { work(1); }
	return a0;
}

func main() {
	out(spill(input(0), 1, 2, 3, 4, 5, 6, 7, 8));
}`

func TestVerifyCoverage(t *testing.T) {
	f, err := lang.Parse("spill.vp", spillSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	s := schema.GenerateIR(f, p, schema.Options{})
	rep := schema.Verify(s, p.Debug)
	if len(rep.Vars) != len(s.Entries) {
		t.Fatalf("report covers %d of %d entries", len(rep.Vars), len(s.Entries))
	}
	var noloc, gapped *schema.VarCoverage
	for i := range rep.Vars {
		v := &rep.Vars[i]
		if v.Entry.Function != "spill" {
			continue
		}
		if v.Entry.Variable == "a8" {
			noloc = v
		}
		if len(v.Gaps) > 0 && gapped == nil {
			gapped = v
		}
	}
	if noloc == nil || !noloc.NoLocation || noloc.Locs != 0 {
		t.Fatalf("a8 coverage = %+v, want NoLocation (stack spill)", noloc)
	}
	if noloc.SpanEnd <= noloc.SpanStart {
		t.Errorf("a8 expected span empty: %+v", noloc)
	}
	if rep.Dropped() < 1 {
		t.Errorf("Dropped() = %d, want >= 1", rep.Dropped())
	}
	if gapped == nil {
		t.Fatal("no caller-saved variable with location gaps found")
	}
	if c := gapped.Covered(); c <= 0 || c >= 1 {
		t.Errorf("gapped coverage fraction = %v, want in (0,1)", c)
	}
	if rep.GapCount() < 1 {
		t.Errorf("GapCount() = %d, want >= 1", rep.GapCount())
	}
	// Translate drops exactly the NoLocation entries.
	meta := schema.Translate(s, p.Debug)
	for _, m := range meta {
		if m.Func == "spill" && m.Name == "a8" {
			t.Error("Translate produced metadata for a spilled variable")
		}
	}
	out := rep.Render()
	if !strings.Contains(out, "NO location info") || !strings.Contains(out, "gaps at") {
		t.Errorf("render lacks gap/no-location lines:\n%s", out)
	}
	if out != rep.Render() {
		t.Error("render not deterministic")
	}
}

func TestVerifyFullCoverage(t *testing.T) {
	// Callee-saved locals and globals are fully covered: no gaps, none
	// dropped.
	f, err := lang.Parse("t.vp", `
var g = 1;
func main() {
	var a = input(0);
	if (a > g) { work(1); }
}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	s := schema.GenerateIR(f, p, schema.Options{})
	rep := schema.Verify(s, p.Debug)
	if rep.Dropped() != 0 || rep.GapCount() != 0 {
		t.Errorf("dropped=%d gaps=%d, want 0/0:\n%s", rep.Dropped(), rep.GapCount(), rep.Render())
	}
	for i := range rep.Vars {
		if c := rep.Vars[i].Covered(); c != 1 {
			t.Errorf("%s.%s covered %v, want 1", rep.Vars[i].Entry.Function, rep.Vars[i].Entry.Variable, c)
		}
	}
}

// --- lint ---

func TestLint(t *testing.T) {
	f, err := lang.Parse("t.vp", `
var tuning = 4096;
var scratch;

func spin() {
	for (;;) { work(1); }
}

func f(n) {
	return n;
	work(99);
}

func main() {
	scratch = f(input(0));
	if (tuning > 0) { work(1); }
}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	rep := schema.Lint(f, p)
	kinds := map[string][]diag.Finding{}
	for _, fd := range rep.Findings {
		kinds[fd.Rule] = append(kinds[fd.Rule], fd)
	}
	if got := kinds["loop-no-exit"]; len(got) != 1 || got[0].Function != "spin" {
		t.Errorf("loop-no-exit = %+v, want one in spin", got)
	}
	found := false
	for _, fd := range kinds["unreachable-code"] {
		if fd.Function == "f" {
			found = true
		}
	}
	if !found {
		t.Errorf("no unreachable-code finding in f: %+v", kinds["unreachable-code"])
	}
	// The synthesized trailing "return 0" of functions that already return
	// must not be reported: main and helper end without explicit returns,
	// and f's real dead code is already counted above.
	for _, fd := range kinds["unreachable-code"] {
		if fd.Function != "f" {
			t.Errorf("spurious unreachable-code finding: %+v", fd)
		}
	}
	if got := kinds["const-var"]; len(got) != 1 || got[0].Variable != "tuning" {
		t.Errorf("const-var = %+v, want tuning", got)
	}
	if got := kinds["dead-var"]; len(got) != 1 || got[0].Variable != "scratch" {
		t.Errorf("dead-var = %+v, want scratch", got)
	}
	out := rep.Render()
	if !strings.Contains(out, "lint:") || !strings.Contains(out, "loop-no-exit") {
		t.Errorf("render:\n%s", out)
	}
}

// --- static priors ---

// TestStaticPriors checks the abstract-interpretation score adjustments:
// trip-bound and work-feeding variables double, provably-constant ones
// halve, and with priors disabled (the default) scores are untouched.
func TestStaticPriors(t *testing.T) {
	src := `
func main() {
	var n = input(0);
	var amount = input(1);
	var seed;
	var flag = seed;
	var i = 0;
	while (i < n) {
		work(amount);
		if (flag > 0) { work(1); }
		i = i + 1;
	}
}`
	f, err := lang.Parse("t.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	base := schema.GenerateIR(f, p, schema.Options{})
	with := schema.GenerateIR(f, p, schema.Options{StaticPriors: true})
	if len(base.Entries) != len(with.Entries) {
		t.Fatalf("priors changed the entry set: %d vs %d", len(base.Entries), len(with.Entries))
	}
	ratio := func(fn, v string) float64 {
		b, w := base.Lookup(fn, v), with.Lookup(fn, v)
		if b == nil || w == nil {
			t.Fatalf("%s.%s missing from schema", fn, v)
		}
		return w.Score / b.Score
	}
	if r := ratio("main", "n"); r != 2 {
		t.Errorf("n (trip bound) score ratio = %v, want 2", r)
	}
	if r := ratio("main", "amount"); r != 2 {
		t.Errorf("amount (feeds work) score ratio = %v, want 2", r)
	}
	// flag copies a zero-initialized local, so the interpreter pins it to 0
	// everywhere — a constancy proof the literal-store heuristic (varFacts,
	// which only folds `var x = <literal>`) cannot make.
	if r := ratio("main", "flag"); r != 0.5 {
		t.Errorf("flag (provably constant) score ratio = %v, want 0.5", r)
	}
	// The induction variable i is a trip-bound *counter*, not the bound
	// symbol; it must not be rewarded as one, but it is also not constant.
	if r := ratio("main", "i"); r != 1 && r != 2 {
		t.Errorf("i score ratio = %v, want unchanged or work-fed", r)
	}

	// Disabled priors must be byte-for-byte the heuristic scorer's output.
	again := schema.GenerateIR(f, p, schema.Options{})
	if schema.FormatScored(base) != schema.FormatScored(again) {
		t.Error("default (priors off) schema not stable")
	}
}
