package schema

import (
	"fmt"

	"vprof/internal/cfa"
	"vprof/internal/compiler"
	"vprof/internal/diag"
	"vprof/internal/lang"
)

// Lint runs the IR-level static checks over a compiled program and its
// default schema:
//
//   - unreachable-code: basic blocks no path from the function entry reaches
//     (code after a return, or after an exit-less loop);
//   - loop-no-exit: natural loops with no exit edge at all;
//   - const-var: monitored variables whose value never varies;
//   - dead-var: monitored variables that are never read;
//   - no-location: schema entries the debug information cannot locate
//     anywhere (silently dropped by Translate);
//   - location-gap: schema entries with PC ranges lacking any location.
//
// Findings share the diag vocabulary with `vprof check`, so both tools
// render and exit identically.
func Lint(f *lang.File, prog *compiler.Program) *diag.Report {
	r := &diag.Report{Tool: "lint"}
	add := func(rule string, line int, function, variable, msg string) {
		r.Add(diag.Finding{
			Rule: rule, Severity: diag.SevWarn, File: prog.File, Line: line,
			Function: function, Variable: variable, Message: msg,
		})
	}
	s := GenerateIR(f, prog, Options{})

	for _, fn := range prog.Funcs {
		if fn.Synthetic {
			continue
		}
		a := cfa.AnalyzeFunc(prog, fn)
		if a == nil {
			continue
		}
		reach := a.Graph.Reachable()
		for b, ok := range reach {
			if ok {
				continue
			}
			blk := a.Blocks[b]
			// Every function ends with a synthesized "return 0" fallback;
			// when the body already returns, that two-instruction tail is
			// dead by construction and not worth reporting.
			if blk.Start == fn.End-2 {
				continue
			}
			add("unreachable-code", blk.Line, fn.Name, "",
				fmt.Sprintf("block %s (pc 0x%x-0x%x) is never reached", blk.Label, blk.Start, blk.End))
		}
		for _, l := range a.Loops {
			if len(l.Exits) == 0 {
				blk := a.Blocks[l.Header]
				add("loop-no-exit", blk.Line, fn.Name, "",
					fmt.Sprintf("loop headed at %s has no exit edge", blk.Label))
			}
		}
	}

	constant, dead := varFacts(prog)
	for _, e := range s.Entries {
		switch {
		case dead[e.Key()]:
			add("dead-var", e.Line, e.Function, e.Variable,
				"monitored variable is never read")
		case constant[e.Key()]:
			add("const-var", e.Line, e.Function, e.Variable,
				"monitored variable never varies")
		}
	}

	cov := Verify(s, prog.Debug)
	for i := range cov.Vars {
		v := &cov.Vars[i]
		switch {
		case v.NoLocation:
			add("no-location", v.Entry.Line, v.Entry.Function, v.Entry.Variable,
				fmt.Sprintf("no debug location anywhere in pc 0x%x-0x%x", v.SpanStart, v.SpanEnd))
		case len(v.Gaps) > 0:
			add("location-gap", v.Entry.Line, v.Entry.Function, v.Entry.Variable,
				fmt.Sprintf("%d location gaps, %.0f%% of pc 0x%x-0x%x covered", len(v.Gaps), 100*v.Covered(), v.SpanStart, v.SpanEnd))
		}
	}

	r.Sort()
	return r
}
