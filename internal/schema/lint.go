package schema

import (
	"fmt"
	"sort"
	"strings"

	"vprof/internal/cfa"
	"vprof/internal/compiler"
	"vprof/internal/lang"
)

// Finding is one lint diagnostic.
type Finding struct {
	Kind     string // unreachable-code, loop-no-exit, const-var, dead-var, no-location, location-gap
	Function string
	Variable string // empty for CFG-level findings
	Detail   string
}

func (f Finding) String() string {
	subject := f.Function
	if f.Variable != "" {
		subject += "." + f.Variable
	}
	return fmt.Sprintf("%s: %s: %s", f.Kind, subject, f.Detail)
}

// LintReport collects the static-analysis diagnostics of Lint.
type LintReport struct {
	Findings []Finding
}

// Render prints one finding per line, with a summary header. Deterministic.
func (r *LintReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lint: %d findings\n", len(r.Findings))
	for _, f := range r.Findings {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

// Lint runs the IR-level static checks over a compiled program and its
// default schema:
//
//   - unreachable-code: basic blocks no path from the function entry reaches
//     (code after a return, or after an exit-less loop);
//   - loop-no-exit: natural loops with no exit edge at all;
//   - const-var: monitored variables whose value never varies;
//   - dead-var: monitored variables that are never read;
//   - no-location: schema entries the debug information cannot locate
//     anywhere (silently dropped by Translate);
//   - location-gap: schema entries with PC ranges lacking any location.
func Lint(f *lang.File, prog *compiler.Program) *LintReport {
	r := &LintReport{}
	s := GenerateIR(f, prog, Options{})

	for _, fn := range prog.Funcs {
		if fn.Synthetic {
			continue
		}
		a := cfa.AnalyzeFunc(prog, fn)
		if a == nil {
			continue
		}
		reach := a.Graph.Reachable()
		for b, ok := range reach {
			if ok {
				continue
			}
			blk := a.Blocks[b]
			// Every function ends with a synthesized "return 0" fallback;
			// when the body already returns, that two-instruction tail is
			// dead by construction and not worth reporting.
			if blk.Start == fn.End-2 {
				continue
			}
			r.add(Finding{
				Kind:     "unreachable-code",
				Function: fn.Name,
				Detail:   fmt.Sprintf("block %s (line %d, pc 0x%x-0x%x) is never reached", blk.Label, blk.Line, blk.Start, blk.End),
			})
		}
		for _, l := range a.Loops {
			if len(l.Exits) == 0 {
				blk := a.Blocks[l.Header]
				r.add(Finding{
					Kind:     "loop-no-exit",
					Function: fn.Name,
					Detail:   fmt.Sprintf("loop headed at %s (line %d) has no exit edge", blk.Label, blk.Line),
				})
			}
		}
	}

	constant, dead := varFacts(prog)
	for _, e := range s.Entries {
		switch {
		case dead[e.Key()]:
			r.add(Finding{
				Kind: "dead-var", Function: e.Function, Variable: e.Variable,
				Detail: fmt.Sprintf("monitored variable (line %d) is never read", e.Line),
			})
		case constant[e.Key()]:
			r.add(Finding{
				Kind: "const-var", Function: e.Function, Variable: e.Variable,
				Detail: fmt.Sprintf("monitored variable (line %d) never varies", e.Line),
			})
		}
	}

	cov := Verify(s, prog.Debug)
	for i := range cov.Vars {
		v := &cov.Vars[i]
		switch {
		case v.NoLocation:
			r.add(Finding{
				Kind: "no-location", Function: v.Entry.Function, Variable: v.Entry.Variable,
				Detail: fmt.Sprintf("no debug location anywhere in pc 0x%x-0x%x", v.SpanStart, v.SpanEnd),
			})
		case len(v.Gaps) > 0:
			r.add(Finding{
				Kind: "location-gap", Function: v.Entry.Function, Variable: v.Entry.Variable,
				Detail: fmt.Sprintf("%d location gaps, %.0f%% of pc 0x%x-0x%x covered", len(v.Gaps), 100*v.Covered(), v.SpanStart, v.SpanEnd),
			})
		}
	}

	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Function != b.Function {
			return a.Function < b.Function
		}
		return a.Variable < b.Variable
	})
	return r
}

func (r *LintReport) add(f Finding) { r.Findings = append(r.Findings, f) }
