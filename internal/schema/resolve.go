package schema

import (
	"vprof/internal/debuginfo"
	"vprof/internal/lang"
)

// resolution records where an identifier occurrence was declared.
type resolution struct {
	scope string // declaring function name, or debuginfo.GlobalScope
	line  int    // declaration line
}

// buildResolver resolves every identifier occurrence in fn against the
// enclosing block scopes, mirroring the compiler's scoping rules exactly: a
// declaration is visible from its statement to the end of its block, inner
// declarations shadow outer ones and function parameters, a for clause
// opens its own scope around the init variable, and names bound nowhere in
// the function fall through to the globals. Results land in g.res.
func (g *generator) buildResolver(fn *lang.FuncDecl) {
	w := &scopeWalker{gen: g, fn: fn}
	w.push()
	for _, p := range fn.Params {
		w.declare(p.Name, p.Pos.Line)
	}
	w.block(fn.Body)
	w.pop()
}

type scopeWalker struct {
	gen    *generator
	fn     *lang.FuncDecl
	scopes []map[string]int // name -> declaration line
}

func (w *scopeWalker) push() { w.scopes = append(w.scopes, map[string]int{}) }
func (w *scopeWalker) pop()  { w.scopes = w.scopes[:len(w.scopes)-1] }

func (w *scopeWalker) declare(name string, line int) {
	w.scopes[len(w.scopes)-1][name] = line
}

func (w *scopeWalker) lookup(name string) (int, bool) {
	for i := len(w.scopes) - 1; i >= 0; i-- {
		if line, ok := w.scopes[i][name]; ok {
			return line, true
		}
	}
	return 0, false
}

func (w *scopeWalker) block(b *lang.BlockStmt) {
	w.push()
	for _, s := range b.Stmts {
		w.stmt(s)
	}
	w.pop()
}

func (w *scopeWalker) stmt(s lang.Stmt) {
	switch st := s.(type) {
	case *lang.BlockStmt:
		w.block(st)
	case *lang.DeclStmt:
		// The initializer is evaluated before the name becomes visible.
		if st.Decl.Init != nil {
			w.expr(st.Decl.Init)
		}
		w.declare(st.Decl.Name, st.Decl.Pos.Line)
	case *lang.AssignStmt:
		w.expr(st.Value)
	case *lang.IfStmt:
		w.expr(st.Cond)
		w.block(st.Then)
		if st.Else != nil {
			w.stmt(st.Else)
		}
	case *lang.WhileStmt:
		w.expr(st.Cond)
		w.block(st.Body)
	case *lang.ForStmt:
		w.push() // for-clause scope (init variable)
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.expr(st.Cond)
		}
		w.block(st.Body)
		if st.Post != nil {
			w.stmt(st.Post)
		}
		w.pop()
	case *lang.ReturnStmt:
		if st.Value != nil {
			w.expr(st.Value)
		}
	case *lang.ExprStmt:
		w.expr(st.X)
	}
}

// expr records the resolution of every identifier in e under the current
// scope stack. Unresolvable names (e.g. misspellings) are left unmapped and
// never monitored.
func (w *scopeWalker) expr(e lang.Expr) {
	lang.Walk(e, func(n lang.Node) bool {
		id, ok := n.(*lang.Ident)
		if !ok {
			return true
		}
		if line, ok := w.lookup(id.Name); ok {
			w.gen.res[id] = resolution{scope: w.fn.Name, line: line}
		} else if gd, ok := w.gen.globals[id.Name]; ok {
			w.gen.res[id] = resolution{scope: debuginfo.GlobalScope, line: gd.Pos.Line}
		}
		return true
	})
}
