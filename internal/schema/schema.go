// Package schema implements vProf's schema generator (paper §3.1): the
// static analysis — an LLVM pass in the paper, an IR-level control/data-flow
// pass here (package cfa), with an AST fallback — that decides which program
// variables to monitor during profiling, and the binary static analysis
// (paper §3.2) that translates the schema into runtime variable metadata
// using debug information.
//
// The selection rules are the paper's:
//
//   - every global variable (cheap to monitor, reachable from any context);
//   - loop induction variables (assigned inside a loop and read by the
//     loop's exit condition — detected on the compiled IR via dominator
//     analysis and natural-loop detection);
//   - every variable appearing in a branch/loop conditional expression;
//   - every variable used as a call argument, and every formal parameter.
//
// Each monitored variable becomes one Entry:
//
//	file_path, function, line, variable, type, tags
//
// Entries additionally carry a performance-relevance Score (loop-nesting
// depth weighting with constant-propagation and dead-variable pruning)
// which Options.MinScore/MaxEntries use to cap schema size, and the
// coverage verifier (verify.go) reports which entries the debug
// information cannot actually locate at runtime.
package schema

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
	"vprof/internal/lang"
)

// Tag is a bitmask describing how a monitored variable is used.
type Tag uint8

// Tags, matching the paper's loop / cond / args markers.
const (
	TagNone Tag = 0
	TagLoop Tag = 1 << iota
	TagCond
	TagArgs
)

// Has reports whether all bits of q are set.
func (t Tag) Has(q Tag) bool { return t&q == q }

// String renders tags in the paper's "loop|cond|args" form, or "None".
func (t Tag) String() string {
	if t == TagNone {
		return "None"
	}
	var parts []string
	if t.Has(TagLoop) {
		parts = append(parts, "loop")
	}
	if t.Has(TagCond) {
		parts = append(parts, "cond")
	}
	if t.Has(TagArgs) {
		parts = append(parts, "args")
	}
	return strings.Join(parts, "|")
}

// Entry is one schema line: a variable to monitor.
type Entry struct {
	FilePath string
	Function string // declaring function, or debuginfo.GlobalScope
	Line     int    // definition line
	Variable string
	Type     string // "int" or "ptr"
	Tags     Tag
	// Score is the performance-relevance score: the tag weight scaled by
	// 1 + the variable's deepest loop-nesting access depth, or 0 for
	// variables that never vary or are never read. Zero when generated
	// without IR analysis beyond the plain tag weight.
	Score float64
}

// Key identifies the variable (function scope + name).
func (e Entry) Key() string { return e.Function + "\x00" + e.Variable }

// String renders the entry in the paper's schema format.
func (e Entry) String() string {
	return fmt.Sprintf("%s, %s, %d, %s, %s, %s",
		e.FilePath, e.Function, e.Line, e.Variable, e.Type, e.Tags)
}

// ScoredString renders the entry with its relevance score as a 7th field.
func (e Entry) ScoredString() string {
	return e.String() + ", " + FormatScore(e.Score)
}

// FormatScore renders a relevance score in the canonical schema syntax.
func FormatScore(s float64) string {
	return strconv.FormatFloat(s, 'g', -1, 64)
}

// Schema is the ordered list of variables selected for monitoring.
type Schema struct {
	Entries []Entry
	// Pruned counts entries removed by the MinScore/MaxEntries options.
	Pruned int

	indexMu sync.Mutex
	index   map[string]int // Key() -> Entries index, built lazily by Lookup
}

// Lookup returns the entry for a variable, or nil. fn is the declaring
// function or debuginfo.GlobalScope. Lookup is safe for concurrent use as
// long as Entries is not being mutated concurrently; the lazy index build is
// mutex-guarded so the parallel analysis engine can share one Schema.
func (s *Schema) Lookup(fn, name string) *Entry {
	s.indexMu.Lock()
	if s.index == nil || len(s.index) != len(s.Entries) {
		s.index = make(map[string]int, len(s.Entries))
		for i := range s.Entries {
			s.index[s.Entries[i].Key()] = i
		}
	}
	i, ok := s.index[fn+"\x00"+name]
	s.indexMu.Unlock()
	if ok {
		return &s.Entries[i]
	}
	return nil
}

// Options controls schema generation.
type Options struct {
	// FuncFilter, when non-nil, restricts monitored locals to functions
	// for which it returns true — the paper's per-component restriction
	// ("limit the variables to monitor to specific components"). Globals
	// are always included.
	FuncFilter func(name string) bool
	// IncludeGlobals defaults to true; set SkipGlobals to drop them.
	SkipGlobals bool
	// MinScore drops entries whose relevance score is below the bound
	// (0 disables the filter).
	MinScore float64
	// MaxEntries caps the schema at the N highest-scoring entries
	// (0 = unlimited). Ties break on function then variable name, so the
	// result is deterministic.
	MaxEntries int
	// DisableIR forces the AST-only heuristic even when the program
	// compiles; mainly for cross-checking the two analyses.
	DisableIR bool
	// StaticPriors folds the abstract interpreter's value evidence into
	// the relevance scores: variables naming a symbolic loop trip bound or
	// feeding work()/block() double their score, provably-constant
	// variables halve it. Off by default — the default schema stays
	// byte-for-byte identical to the heuristic scorer's.
	StaticPriors bool
}

// Generate runs the static analysis over a parsed file and returns the
// schema of variables to monitor. When the file compiles, induction
// detection and relevance scoring run on the IR (package cfa); otherwise
// the AST heuristic is used and scores degrade to plain tag weights.
func Generate(f *lang.File, opts Options) *Schema {
	if !opts.DisableIR {
		if p, err := compiler.Compile(f); err == nil {
			return GenerateIR(f, p, opts)
		}
	}
	return generate(f, nil, opts)
}

// GenerateIR is Generate for callers that already compiled the file; it
// avoids a second compilation.
func GenerateIR(f *lang.File, p *compiler.Program, opts Options) *Schema {
	if opts.DisableIR {
		p = nil
	}
	return generate(f, p, opts)
}

func generate(f *lang.File, prog *compiler.Program, opts Options) *Schema {
	ptrs := compiler.InferPointers(f)
	g := &generator{
		file:    f,
		prog:    prog,
		ptrs:    ptrs,
		globals: map[string]*lang.VarDecl{},
		found:   map[string]*Entry{},
		res:     map[*lang.Ident]resolution{},
	}
	for _, gd := range f.Globals() {
		g.globals[gd.Name] = gd
	}

	if !opts.SkipGlobals {
		for _, gd := range f.Globals() {
			g.ensure(debuginfo.GlobalScope, gd.Name, gd.Pos.Line)
		}
	}
	for _, fn := range f.Funcs() {
		if opts.FuncFilter != nil && !opts.FuncFilter(fn.Name) {
			// Still collect tag information for globals referenced
			// inside filtered-out functions? The paper extracts
			// variables only from the chosen component's files; we
			// mirror that by skipping the function entirely.
			continue
		}
		g.buildResolver(fn)
		g.analyzeFunc(fn)
	}
	if prog != nil {
		g.applyIRInduction(opts)
	}

	s := &Schema{Entries: make([]Entry, 0, len(g.found))}
	for _, e := range g.found {
		s.Entries = append(s.Entries, *e)
	}
	g.scoreEntries(s)
	if opts.StaticPriors && prog != nil {
		g.applyStaticPriors(s)
	}
	prune(s, opts)
	sortEntries(s.Entries)
	return s
}

// sortEntries establishes the canonical schema order: function, then name.
func sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Function != b.Function {
			return a.Function < b.Function
		}
		return a.Variable < b.Variable
	})
}

// prune applies the MinScore/MaxEntries caps. Selection sorts by descending
// score with the canonical order as tie break, so output is deterministic.
func prune(s *Schema, opts Options) {
	before := len(s.Entries)
	if opts.MinScore > 0 {
		kept := s.Entries[:0]
		for _, e := range s.Entries {
			if e.Score >= opts.MinScore {
				kept = append(kept, e)
			}
		}
		s.Entries = kept
	}
	if opts.MaxEntries > 0 && len(s.Entries) > opts.MaxEntries {
		sort.Slice(s.Entries, func(i, j int) bool {
			a, b := s.Entries[i], s.Entries[j]
			if a.Score != b.Score {
				return a.Score > b.Score
			}
			if a.Function != b.Function {
				return a.Function < b.Function
			}
			return a.Variable < b.Variable
		})
		s.Entries = s.Entries[:opts.MaxEntries]
	}
	s.Pruned = before - len(s.Entries)
}

type generator struct {
	file    *lang.File
	prog    *compiler.Program // nil when compiling failed or IR disabled
	ptrs    map[string]bool
	globals map[string]*lang.VarDecl
	found   map[string]*Entry
	// res maps every resolvable identifier occurrence to its declaration;
	// identifiers are unique AST nodes, so one map spans all functions.
	res map[*lang.Ident]resolution
	// ir holds the per-function flow analyses and const/dead facts when a
	// compiled program is available (irscore.go).
	ir *irInfo
}

// ensure records a monitored variable, returning its entry.
func (g *generator) ensure(fn, name string, line int) *Entry {
	key := fn + "\x00" + name
	if e, ok := g.found[key]; ok {
		return e
	}
	typ := "int"
	if g.ptrs[key] {
		typ = "ptr"
	}
	e := &Entry{
		FilePath: g.file.Path,
		Function: fn,
		Line:     line,
		Variable: name,
		Type:     typ,
		Tags:     TagNone,
	}
	g.found[key] = e
	return e
}

// tagIdent adds tags to the (possibly new) entry for an identifier
// occurrence, using the scope resolution built by buildResolver.
func (g *generator) tagIdent(id *lang.Ident, tags Tag) {
	r, ok := g.res[id]
	if !ok {
		return
	}
	if r.scope == debuginfo.GlobalScope {
		if _, monitored := g.found[r.scope+"\x00"+id.Name]; !monitored {
			// Globals excluded via SkipGlobals stay excluded; tags
			// only annotate entries that exist.
			return
		}
	}
	g.ensure(r.scope, id.Name, r.line).Tags |= tags
}

// identsIn collects the identifier occurrences appearing in an expression.
func identsIn(e lang.Expr) []*lang.Ident {
	var out []*lang.Ident
	lang.Walk(e, func(n lang.Node) bool {
		if id, ok := n.(*lang.Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}

func (g *generator) analyzeFunc(fn *lang.FuncDecl) {
	// Formal parameters are monitored with the args tag (the paper's
	// Figure 3 shows checkpoint_lsn, a parameter, tagged args).
	for _, p := range fn.Params {
		g.ensure(fn.Name, p.Name, p.Pos.Line).Tags |= TagArgs
	}

	lang.Walk(fn.Body, func(n lang.Node) bool {
		switch x := n.(type) {
		case *lang.IfStmt:
			for _, id := range identsIn(x.Cond) {
				g.tagIdent(id, TagCond)
			}
		case *lang.WhileStmt:
			for _, id := range identsIn(x.Cond) {
				g.tagIdent(id, TagCond)
			}
			if g.prog == nil {
				g.tagInduction(x.Cond, x.Body, nil)
			}
		case *lang.ForStmt:
			if x.Cond != nil {
				for _, id := range identsIn(x.Cond) {
					g.tagIdent(id, TagCond)
				}
			}
			if g.prog == nil {
				g.tagInduction(x.Cond, x.Body, x.Post)
			}
		case *lang.CallExpr:
			for _, a := range x.Args {
				for _, id := range identsIn(a) {
					g.tagIdent(id, TagArgs)
				}
			}
		}
		return true
	})
}

// tagInduction is the AST fallback for loop induction variables (assigned in
// the loop body or post clause and referenced in the loop condition), used
// when no compiled IR is available. The IR path (irscore.go) replaces it
// with dominator-based detection over natural loops.
func (g *generator) tagInduction(cond lang.Expr, body *lang.BlockStmt, post lang.Stmt) {
	assigned := map[string]bool{}
	collectAssigned := func(n lang.Node) bool {
		if a, ok := n.(*lang.AssignStmt); ok {
			assigned[a.Name] = true
		}
		return true
	}
	lang.Walk(body, collectAssigned)
	if post != nil {
		lang.Walk(post, collectAssigned)
	}
	if cond == nil {
		return
	}
	for _, id := range identsIn(cond) {
		if assigned[id.Name] {
			g.tagIdent(id, TagLoop)
		}
	}
}

// Translate performs the paper's binary static analysis step: it searches
// the debug information for the runtime locations of every schema variable
// and returns the variable metadata (one or more VarLoc entries per
// variable). Variables with no debug locations are silently dropped, exactly
// as vProf treats DWARF-incomplete variables as inaccessible; use Verify to
// report them instead.
func Translate(s *Schema, info *debuginfo.Info) []debuginfo.VarLoc {
	var out []debuginfo.VarLoc
	for _, e := range s.Entries {
		out = append(out, info.VarEntries(e.Function, e.Variable)...)
	}
	return out
}

// Format renders the whole schema in the paper's textual format, one entry
// per line.
func Format(s *Schema) string {
	var b strings.Builder
	for _, e := range s.Entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatScored renders the schema with the relevance score as a 7th field
// on every line. Parse accepts both forms.
func FormatScored(s *Schema) string {
	var b strings.Builder
	for _, e := range s.Entries {
		b.WriteString(e.ScoredString())
		b.WriteByte('\n')
	}
	return b.String()
}
