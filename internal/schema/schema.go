// Package schema implements vProf's schema generator (paper §3.1): the
// static analysis — an LLVM pass in the paper, an AST pass here — that
// decides which program variables to monitor during profiling, and the
// binary static analysis (paper §3.2) that translates the schema into
// runtime variable metadata using debug information.
//
// The selection rules are the paper's:
//
//   - every global variable (cheap to monitor, reachable from any context);
//   - loop induction variables (assigned inside a loop or its post clause
//     and referenced in the loop condition);
//   - every variable appearing in a branch/loop conditional expression;
//   - every variable used as a call argument, and every formal parameter.
//
// Each monitored variable becomes one Entry:
//
//	file_path, function, line, variable, type, tags
package schema

import (
	"fmt"
	"sort"
	"strings"

	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
	"vprof/internal/lang"
)

// Tag is a bitmask describing how a monitored variable is used.
type Tag uint8

// Tags, matching the paper's loop / cond / args markers.
const (
	TagNone Tag = 0
	TagLoop Tag = 1 << iota
	TagCond
	TagArgs
)

// Has reports whether all bits of q are set.
func (t Tag) Has(q Tag) bool { return t&q == q }

// String renders tags in the paper's "loop|cond|args" form, or "None".
func (t Tag) String() string {
	if t == TagNone {
		return "None"
	}
	var parts []string
	if t.Has(TagLoop) {
		parts = append(parts, "loop")
	}
	if t.Has(TagCond) {
		parts = append(parts, "cond")
	}
	if t.Has(TagArgs) {
		parts = append(parts, "args")
	}
	return strings.Join(parts, "|")
}

// Entry is one schema line: a variable to monitor.
type Entry struct {
	FilePath string
	Function string // declaring function, or debuginfo.GlobalScope
	Line     int    // definition line
	Variable string
	Type     string // "int" or "ptr"
	Tags     Tag
}

// Key identifies the variable (function scope + name).
func (e Entry) Key() string { return e.Function + "\x00" + e.Variable }

// String renders the entry in the paper's schema format.
func (e Entry) String() string {
	return fmt.Sprintf("%s, %s, %d, %s, %s, %s",
		e.FilePath, e.Function, e.Line, e.Variable, e.Type, e.Tags)
}

// Schema is the ordered list of variables selected for monitoring.
type Schema struct {
	Entries []Entry
}

// Lookup returns the entry for a variable, or nil. fn is the declaring
// function or debuginfo.GlobalScope.
func (s *Schema) Lookup(fn, name string) *Entry {
	for i := range s.Entries {
		if s.Entries[i].Function == fn && s.Entries[i].Variable == name {
			return &s.Entries[i]
		}
	}
	return nil
}

// Options controls schema generation.
type Options struct {
	// FuncFilter, when non-nil, restricts monitored locals to functions
	// for which it returns true — the paper's per-component restriction
	// ("limit the variables to monitor to specific components"). Globals
	// are always included.
	FuncFilter func(name string) bool
	// IncludeGlobals defaults to true; set SkipGlobals to drop them.
	SkipGlobals bool
}

// Generate runs the static analysis over a parsed file and returns the
// schema of variables to monitor.
func Generate(f *lang.File, opts Options) *Schema {
	ptrs := compiler.InferPointers(f)
	g := &generator{
		file:    f,
		ptrs:    ptrs,
		globals: map[string]*lang.VarDecl{},
		found:   map[string]*Entry{},
	}
	for _, gd := range f.Globals() {
		g.globals[gd.Name] = gd
	}

	if !opts.SkipGlobals {
		for _, gd := range f.Globals() {
			g.ensure(debuginfo.GlobalScope, gd.Name, gd.Pos.Line)
		}
	}
	for _, fn := range f.Funcs() {
		if opts.FuncFilter != nil && !opts.FuncFilter(fn.Name) {
			// Still collect tag information for globals referenced
			// inside filtered-out functions? The paper extracts
			// variables only from the chosen component's files; we
			// mirror that by skipping the function entirely.
			continue
		}
		g.analyzeFunc(fn)
	}

	s := &Schema{Entries: make([]Entry, 0, len(g.found))}
	for _, e := range g.found {
		s.Entries = append(s.Entries, *e)
	}
	sort.Slice(s.Entries, func(i, j int) bool {
		a, b := s.Entries[i], s.Entries[j]
		if a.Function != b.Function {
			return a.Function < b.Function
		}
		return a.Variable < b.Variable
	})
	return s
}

type generator struct {
	file    *lang.File
	ptrs    map[string]bool
	globals map[string]*lang.VarDecl
	found   map[string]*Entry
}

// ensure records a monitored variable, returning its entry.
func (g *generator) ensure(fn, name string, line int) *Entry {
	key := fn + "\x00" + name
	if e, ok := g.found[key]; ok {
		return e
	}
	typ := "int"
	if g.ptrs[key] {
		typ = "ptr"
	}
	e := &Entry{
		FilePath: g.file.Path,
		Function: fn,
		Line:     line,
		Variable: name,
		Type:     typ,
		Tags:     TagNone,
	}
	g.found[key] = e
	return e
}

// funcScope resolves an identifier used in fn to its declaring scope and
// definition line.
func (g *generator) resolve(fn *lang.FuncDecl, name string) (scope string, line int, ok bool) {
	for _, p := range fn.Params {
		if p.Name == name {
			return fn.Name, p.Pos.Line, true
		}
	}
	var declLine int
	declared := false
	lang.Walk(fn.Body, func(n lang.Node) bool {
		if d, ok := n.(*lang.DeclStmt); ok && d.Decl.Name == name && !declared {
			declared = true
			declLine = d.Decl.Pos.Line
		}
		return !declared
	})
	if declared {
		return fn.Name, declLine, true
	}
	if gd, ok := g.globals[name]; ok {
		return debuginfo.GlobalScope, gd.Pos.Line, true
	}
	return "", 0, false
}

// tagIdent adds tags to the (possibly new) entry for an identifier used in fn.
func (g *generator) tagIdent(fn *lang.FuncDecl, name string, tags Tag) {
	scope, line, ok := g.resolve(fn, name)
	if !ok {
		return
	}
	if scope == debuginfo.GlobalScope {
		if _, monitored := g.found[scope+"\x00"+name]; !monitored {
			// Globals excluded via SkipGlobals stay excluded; tags
			// only annotate entries that exist.
			return
		}
	}
	g.ensure(scope, name, line).Tags |= tags
}

// identsIn collects the identifier names appearing in an expression.
func identsIn(e lang.Expr) []string {
	var out []string
	lang.Walk(e, func(n lang.Node) bool {
		if id, ok := n.(*lang.Ident); ok {
			out = append(out, id.Name)
		}
		return true
	})
	return out
}

func (g *generator) analyzeFunc(fn *lang.FuncDecl) {
	// Formal parameters are monitored with the args tag (the paper's
	// Figure 3 shows checkpoint_lsn, a parameter, tagged args).
	for _, p := range fn.Params {
		g.ensure(fn.Name, p.Name, p.Pos.Line).Tags |= TagArgs
	}

	lang.Walk(fn.Body, func(n lang.Node) bool {
		switch x := n.(type) {
		case *lang.IfStmt:
			for _, name := range identsIn(x.Cond) {
				g.tagIdent(fn, name, TagCond)
			}
		case *lang.WhileStmt:
			for _, name := range identsIn(x.Cond) {
				g.tagIdent(fn, name, TagCond)
			}
			g.tagInduction(fn, x.Cond, x.Body, nil)
		case *lang.ForStmt:
			if x.Cond != nil {
				for _, name := range identsIn(x.Cond) {
					g.tagIdent(fn, name, TagCond)
				}
			}
			g.tagInduction(fn, x.Cond, x.Body, x.Post)
		case *lang.CallExpr:
			for _, a := range x.Args {
				for _, name := range identsIn(a) {
					g.tagIdent(fn, name, TagArgs)
				}
			}
		}
		return true
	})
}

// tagInduction marks loop induction variables: assigned in the loop body or
// post clause and referenced in the loop condition.
func (g *generator) tagInduction(fn *lang.FuncDecl, cond lang.Expr, body *lang.BlockStmt, post lang.Stmt) {
	assigned := map[string]bool{}
	collectAssigned := func(n lang.Node) bool {
		if a, ok := n.(*lang.AssignStmt); ok {
			assigned[a.Name] = true
		}
		return true
	}
	lang.Walk(body, collectAssigned)
	if post != nil {
		lang.Walk(post, collectAssigned)
	}
	if cond == nil {
		return
	}
	for _, name := range identsIn(cond) {
		if assigned[name] {
			g.tagIdent(fn, name, TagLoop)
		}
	}
}

// Translate performs the paper's binary static analysis step: it searches
// the debug information for the runtime locations of every schema variable
// and returns the variable metadata (one or more VarLoc entries per
// variable). Variables with no debug locations are silently dropped, exactly
// as vProf treats DWARF-incomplete variables as inaccessible.
func Translate(s *Schema, info *debuginfo.Info) []debuginfo.VarLoc {
	var out []debuginfo.VarLoc
	for _, e := range s.Entries {
		out = append(out, info.VarEntries(e.Function, e.Variable)...)
	}
	return out
}

// Format renders the whole schema in the paper's textual format, one entry
// per line.
func Format(s *Schema) string {
	var b strings.Builder
	for _, e := range s.Entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
