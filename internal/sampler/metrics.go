package sampler

import (
	"sync/atomic"

	"vprof/internal/obs"
)

// selfMetrics is the profiler's self-profiling instrumentation (Coz-style:
// a profiler must measure itself to be trusted). All fields are nil-safe obs
// metrics; the uninstrumented default costs one atomic pointer load per
// alarm.
type selfMetrics struct {
	alarms       *obs.Counter   // profiling alarms fired
	valueSamples *obs.Counter   // value samples recorded
	unwindDepth  *obs.Histogram // frames virtually unwound per alarm
}

var samplerMetrics = func() *atomic.Pointer[selfMetrics] {
	p := new(atomic.Pointer[selfMetrics])
	p.Store(&selfMetrics{})
	return p
}()

// Instrument registers the sampler's self-profiling metric families on reg
// and routes subsequent profiling runs through them. A nil registry restores
// the uninstrumented default.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		samplerMetrics.Store(&selfMetrics{})
		return
	}
	samplerMetrics.Store(&selfMetrics{
		alarms: reg.Counter("vprof_sampler_alarms_total",
			"Profiling alarms fired across all profiled runs."),
		valueSamples: reg.Counter("vprof_sampler_value_samples_total",
			"Variable value samples recorded across all profiled runs."),
		unwindDepth: reg.Histogram("vprof_sampler_unwind_depth",
			"Frames virtually unwound per profiling alarm.",
			obs.LinearBuckets(0, 1, 9)),
	})
}
