// Package sampler implements vProf's profiler runtime (paper §3.3–§4): the
// PC-sampling cost histogram shared with gprof, plus passive value-sample
// recording driven by the same periodic alarm.
//
// Data structures follow the paper's Figure 3:
//
//   - PCToVarTable: a hash table mapping each PC to the chain of variables
//     accessible at that PC (hash collisions use separate chaining).
//   - VariableArray: variable-metadata nodes; overlapping variables at a PC
//     are connected through each node's link field. One refinement over the
//     paper's description: when one metadata range overlaps *different*
//     chains at different PCs (a global spans the whole text section), a
//     node per distinct predecessor is allocated so chains stay exact; the
//     paper's PC-containment check during sampling is still performed.
//   - SampleArray: recorded value samples, chained per variable through
//     sample_tail/link, each carrying the PC and the stack_depth at which it
//     was recorded.
//
// At every alarm the current PC is histogrammed and all variables accessible
// at it are recorded; then the call stack is virtually unwound a bounded
// number of frames (default 3) and variables accessible at each caller PC
// are recorded with their stack depth — the mechanism that gives callers of
// time-consuming callees their value samples.
package sampler

import (
	"time"

	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
	"vprof/internal/vm"
)

// DefaultUnwindDepth is the paper's default bound on virtual stack
// unwinding.
const DefaultUnwindDepth = 3

// DefaultInterval is the default alarm interval in ticks. It is prime so
// that sampling does not phase-lock with loop periods.
const DefaultInterval = 97

// Options configures a Profiler.
type Options struct {
	// Interval is the alarm period in ticks (DefaultInterval if 0).
	Interval int64
	// UnwindDepth bounds virtual stack unwinding (DefaultUnwindDepth if
	// 0; use a negative value to disable unwinding entirely).
	UnwindDepth int
	// TableSize overrides the PCToVarTable bucket count; the default is
	// half the text-section length, per the paper.
	TableSize int
	// OffCPU switches the profiler to off-CPU mode (the paper's §7
	// future-work direction): alarms fire on the wall clock and only
	// instants where the program is blocked (inside block(n)) are
	// recorded, so function costs measure *blocked* time. The same
	// value-assisted calibration then applies to off-CPU profiles.
	OffCPU bool
}

// LayoutEntry maps a variable to its identity, the analogue of the paper's
// Layout Log connecting value samples back to schema variables.
type LayoutEntry struct {
	Func      string // declaring function, or debuginfo.GlobalScope
	Name      string
	IsPointer bool
}

// Sample is one SampleArray record.
type Sample struct {
	// Layout identifies the sampled variable (index into Profile.Layout).
	Layout int32
	// VarNode is the VariableArray node through which the sample was
	// recorded.
	VarNode int32
	// PC at which the variable was accessible (the caller PC for
	// unwound samples).
	PC int32
	// StackDepth is the number of frames unwound before recording (0 =
	// sampled at the interrupted PC).
	StackDepth int32
	// Value and Ptr are the variable's value at the alarm.
	Value int64
	Ptr   bool
	// Tick is the simulated time of the alarm.
	Tick int64
	// Link chains to the previous sample of the same VarNode (-1 ends).
	Link int32
}

// varNode is a VariableArray entry.
type varNode struct {
	meta       debuginfo.VarLoc
	layout     int32
	link       int32 // previous overlapping variable node at this PC chain
	sampleTail int32 // most recent sample for this node (-1 none)
}

// pcEntry is a PCToVarTable slot: the head of the variable chain for one PC.
// Hash collisions (different PCs, same bucket) chain through next.
type pcEntry struct {
	pc       int32
	varIndex int32
	next     int32
}

// Profiler records PC and value samples for one process execution.
type Profiler struct {
	prog *compiler.Program
	opts Options

	layout    []LayoutEntry
	layoutIdx map[string]int32

	vars    []varNode
	buckets []int32
	entries []pcEntry

	hist      []int64
	samples   []Sample
	numAlarms int64
	initTime  time.Duration
}

// New builds a Profiler for prog monitoring the given variable metadata
// (typically schema.Translate output). Initialization cost is measured and
// reported via InitDuration, mirroring the paper's Table 5.
func New(prog *compiler.Program, metadata []debuginfo.VarLoc, opts Options) *Profiler {
	start := time.Now()
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.UnwindDepth == 0 {
		opts.UnwindDepth = DefaultUnwindDepth
	}
	if opts.TableSize <= 0 {
		opts.TableSize = len(prog.Instrs) / 2
		if opts.TableSize < 16 {
			opts.TableSize = 16
		}
	}
	p := &Profiler{
		prog:      prog,
		opts:      opts,
		layoutIdx: map[string]int32{},
		buckets:   make([]int32, opts.TableSize),
		hist:      make([]int64, len(prog.Instrs)),
	}
	for i := range p.buckets {
		p.buckets[i] = -1
	}
	for _, m := range metadata {
		p.addMetadata(m)
	}
	p.initTime = time.Since(start)
	return p
}

func (p *Profiler) layoutOf(m debuginfo.VarLoc) int32 {
	key := m.Func + "\x00" + m.Name
	if i, ok := p.layoutIdx[key]; ok {
		return i
	}
	i := int32(len(p.layout))
	p.layout = append(p.layout, LayoutEntry{Func: m.Func, Name: m.Name, IsPointer: m.IsPointer})
	p.layoutIdx[key] = i
	return i
}

func (p *Profiler) hash(pc int) int { return pc % len(p.buckets) }

// findPC returns the pcEntry index for pc, or -1.
func (p *Profiler) findPC(pc int) int32 {
	for i := p.buckets[p.hash(pc)]; i >= 0; i = p.entries[i].next {
		if p.entries[i].pc == int32(pc) {
			return i
		}
	}
	return -1
}

// addMetadata registers one variable-metadata entry, filling PCToVarTable
// for every PC in its range and linking overlap chains.
func (p *Profiler) addMetadata(m debuginfo.VarLoc) {
	layout := p.layoutOf(m)
	// nodeFor maps a predecessor head to the VariableArray node for this
	// metadata chained after that predecessor.
	nodeFor := map[int32]int32{}
	for pc := m.PCStart; pc < m.PCEnd && pc < len(p.prog.Instrs); pc++ {
		ei := p.findPC(pc)
		var prev int32 = -1
		if ei >= 0 {
			prev = p.entries[ei].varIndex
		}
		node, ok := nodeFor[prev]
		if !ok {
			node = int32(len(p.vars))
			p.vars = append(p.vars, varNode{meta: m, layout: layout, link: prev, sampleTail: -1})
			nodeFor[prev] = node
		}
		if ei >= 0 {
			p.entries[ei].varIndex = node
		} else {
			b := p.hash(pc)
			p.entries = append(p.entries, pcEntry{pc: int32(pc), varIndex: node, next: p.buckets[b]})
			p.buckets[b] = int32(len(p.entries) - 1)
		}
	}
}

// OnAlarm is the CPU-time profiling signal handler: record the PC sample,
// record value samples at the current PC, then virtually unwind.
func (p *Profiler) OnAlarm(m *vm.VM) {
	p.record(m, m.Ticks())
}

// OnWallAlarm is the off-CPU profiling handler: only blocked instants are
// recorded, with timestamps on the wall clock, so accumulated cost measures
// time spent off-CPU.
func (p *Profiler) OnWallAlarm(m *vm.VM, blocked bool) {
	if !blocked {
		return
	}
	p.record(m, m.WallTicks())
}

func (p *Profiler) record(m *vm.VM, tick int64) {
	p.numAlarms++
	sm := samplerMetrics.Load()
	sm.alarms.Inc()
	pc := m.PC()
	if pc >= 0 && pc < len(p.hist) {
		p.hist[pc]++
	}
	before := len(p.samples)
	unwound := 0
	defer func() {
		sm.valueSamples.Add(float64(len(p.samples) - before))
		sm.unwindDepth.Observe(float64(unwound))
	}()
	p.sampleAt(m, pc, 0, 0, tick)
	if p.opts.UnwindDepth < 0 {
		return
	}
	for d := 1; d <= p.opts.UnwindDepth; d++ {
		below, ok := m.Frame(d - 1)
		if !ok || below.RetPC < 0 {
			return
		}
		if _, ok := m.Frame(d); !ok {
			return
		}
		// The caller PC is the call-instruction PC recorded in the
		// callee frame; registers are restored from the caller frame.
		p.sampleAt(m, below.RetPC, d, d, tick)
		unwound = d
	}
}

// sampleAt records value samples for all variables accessible at pc, reading
// registers from the frame at frameDepth.
func (p *Profiler) sampleAt(m *vm.VM, pc, frameDepth, stackDepth int, tick int64) {
	ei := p.findPC(pc)
	if ei < 0 {
		return
	}
	for ni := p.entries[ei].varIndex; ni >= 0; ni = p.vars[ni].link {
		node := &p.vars[ni]
		// The paper's containment check: linked entries may not all
		// cover this PC.
		if !node.meta.Contains(pc) {
			continue
		}
		var val vm.Value
		switch node.meta.Loc {
		case debuginfo.LocReg:
			fv, ok := m.Frame(frameDepth)
			if !ok {
				continue
			}
			val = fv.Slot(node.meta.Reg)
		case debuginfo.LocMem:
			gi := (node.meta.Addr - compiler.GlobalBase) / 8
			if gi < 0 || gi >= p.prog.NumGlobals() {
				continue
			}
			val = m.Global(gi)
		}
		idx := int32(len(p.samples))
		p.samples = append(p.samples, Sample{
			Layout:     node.layout,
			VarNode:    ni,
			PC:         int32(pc),
			StackDepth: int32(stackDepth),
			Value:      val.I,
			Ptr:        val.Ptr,
			Tick:       tick,
			Link:       node.sampleTail,
		})
		node.sampleTail = idx
	}
}

// Profile is the on-disk artifact of one profiled process: the gprof-style
// PC histogram, the value samples, and the layout log.
type Profile struct {
	Pid        int
	File       string
	Interval   int64
	TotalTicks int64
	NumAlarms  int64
	// Hist[pc] is the number of PC samples at pc.
	Hist    []int64
	Samples []Sample
	Layout  []LayoutEntry
	// Metrics for overhead reporting (Table 5).
	PCTableBytes  int64
	VarArrayBytes int64
	SampleBytes   int64
	InitDuration  time.Duration
}

// Finish packages the recorded data into a Profile for process pid that
// consumed totalTicks.
func (p *Profiler) Finish(pid int, totalTicks int64) *Profile {
	const (
		pcEntrySize = 12 // pc + varIndex + next
		varNodeSize = 64 // metadata + link + tail (modeled)
		sampleSize  = 40 // fields of a SampleArray record
	)
	return &Profile{
		Pid:           pid,
		File:          p.prog.File,
		Interval:      p.opts.Interval,
		TotalTicks:    totalTicks,
		NumAlarms:     p.numAlarms,
		Hist:          p.hist,
		Samples:       p.samples,
		Layout:        p.layout,
		PCTableBytes:  int64(len(p.buckets)*4 + len(p.entries)*pcEntrySize),
		VarArrayBytes: int64(len(p.vars) * varNodeSize),
		SampleBytes:   int64(len(p.samples) * sampleSize),
		InitDuration:  p.initTime,
	}
}

// NumVarNodes exposes the VariableArray length (tests, Table 5).
func (p *Profiler) NumVarNodes() int { return len(p.vars) }

// NumPCEntries exposes the PCToVarTable fill (tests, Table 5).
func (p *Profiler) NumPCEntries() int { return len(p.entries) }

// VarSamples returns the time-ordered value series of one variable in the
// profile, identified by declaring function (or debuginfo.GlobalScope) and
// name. Samples appear in recording order, which is time order.
func (pr *Profile) VarSamples(fn, name string) []Sample {
	li := int32(-1)
	for i, l := range pr.Layout {
		if l.Func == fn && l.Name == name {
			li = int32(i)
			break
		}
	}
	if li < 0 {
		return nil
	}
	var out []Sample
	for _, s := range pr.Samples {
		if s.Layout == li {
			out = append(out, s)
		}
	}
	return out
}

// FuncPCCost returns, per function name, the PC-sample execution cost
// (sample count x interval), attributing each PC to the function containing
// it. Library functions are included; callers filter as needed.
func (pr *Profile) FuncPCCost(info *debuginfo.Info) map[string]int64 {
	out := map[string]int64{}
	for pc, n := range pr.Hist {
		if n == 0 {
			continue
		}
		if fn := info.FuncAt(pc); fn != nil {
			out[fn.Name] += n * pr.Interval
		}
	}
	return out
}

// FuncValueSampleUnits returns, per function name, the number of value-sample
// units recorded inside the function: one unit per (alarm, PC) pair with at
// least one value sample. This is the paper's variable-based execution cost
// basis — "value samples with distinct PCs" within one alarm count once, but
// a variable re-sampled at every alarm (e.g. at a call site while a costly
// callee runs, via virtual unwinding) accrues one unit per alarm, making the
// caller inherit its callee's cost. Multiply by the interval for the cost.
func (pr *Profile) FuncValueSampleUnits(info *debuginfo.Info) map[string]int64 {
	type unit struct {
		tick int64
		pc   int32
	}
	seen := map[unit]bool{}
	out := map[string]int64{}
	for _, s := range pr.Samples {
		u := unit{s.Tick, s.PC}
		if seen[u] {
			continue
		}
		seen[u] = true
		if fn := info.FuncAt(int(s.PC)); fn != nil {
			out[fn.Name]++
		}
	}
	return out
}
