package sampler_test

import (
	"testing"

	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
	"vprof/internal/lang"
	"vprof/internal/sampler"
	"vprof/internal/schema"
	"vprof/internal/vm"
)

// Figure-1-shaped program: a cheap caller holding the interesting variable,
// a costly callee dominating PC samples.
const callerCalleeSrc = `
var g_mode = 0;

func costly(n) {
	work(n);
	return n;
}

func scan(limit) {
	var available_mem = limit * 2;
	var done = 0;
	while (done < 20 && available_mem > 0) {
		costly(400);
		done++;
	}
	return available_mem;
}

func main() {
	g_mode = input(0);
	scan(input(0));
}
`

func buildProfiled(t *testing.T, src string, inputs ...int64) (*compiler.Program, *sampler.RunResult) {
	t.Helper()
	f, err := lang.Parse("prog.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	sch := schema.Generate(f, schema.Options{})
	meta := schema.Translate(sch, prog.Debug)
	res := sampler.ProfileRun(prog, meta, vm.Config{Inputs: inputs}, sampler.Options{Interval: 37})
	return prog, res
}

func TestPCHistogramCoversCostlyFunc(t *testing.T) {
	prog, res := buildProfiled(t, callerCalleeSrc, 5)
	pr := res.Root()
	cost := pr.FuncPCCost(prog.Debug)
	if cost["costly"] == 0 {
		t.Fatal("no PC samples in costly")
	}
	if cost["costly"] <= cost["scan"] {
		t.Errorf("costly (%d) should dominate scan (%d) in PC cost", cost["costly"], cost["scan"])
	}
	// Total histogram samples equal the number of alarms.
	var histSum int64
	for _, n := range pr.Hist {
		histSum += n
	}
	if histSum != pr.NumAlarms {
		t.Errorf("hist sum %d != alarms %d", histSum, pr.NumAlarms)
	}
}

func TestUnwindingRecordsCallerVariables(t *testing.T) {
	prog, res := buildProfiled(t, callerCalleeSrc, 5)
	pr := res.Root()
	samples := pr.VarSamples("scan", "available_mem")
	if len(samples) == 0 {
		t.Fatal("no samples for caller variable available_mem")
	}
	// All samples carry the right value (limit*2 = 10).
	unwound := 0
	scanFn := prog.Debug.FuncNamed("scan")
	for _, s := range samples {
		if s.Value != 10 {
			t.Fatalf("available_mem sample = %d, want 10", s.Value)
		}
		if !scanFn.Contains(int(s.PC)) {
			t.Errorf("sample PC %d outside scan [%d,%d)", s.PC, scanFn.Entry, scanFn.End)
		}
		if s.StackDepth > 0 {
			unwound++
		}
	}
	if unwound == 0 {
		t.Error("no samples came from virtual unwinding")
	}
}

func TestUnwindDepthZeroDisablesUnwinding(t *testing.T) {
	f, err := lang.Parse("prog.vp", callerCalleeSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	meta := schema.Translate(schema.Generate(f, schema.Options{}), prog.Debug)
	res := sampler.ProfileRun(prog, meta, vm.Config{Inputs: []int64{5}}, sampler.Options{Interval: 37, UnwindDepth: -1})
	for _, s := range res.Root().Samples {
		if s.StackDepth != 0 {
			t.Fatalf("unwound sample recorded despite disabled unwinding: %+v", s)
		}
	}
}

func TestVariableBasedCostExceedsPCCost(t *testing.T) {
	// The paper's key effect: scan has few own PC samples but many value
	// samples via unwinding, so its distinct-sample-PC count can exceed
	// its own PC sample count.
	prog, res := buildProfiled(t, callerCalleeSrc, 5)
	pr := res.Root()
	units := pr.FuncValueSampleUnits(prog.Debug)
	if units["scan"] == 0 {
		t.Fatal("no value-sample units in scan")
	}
	// scan's value-sample cost must exceed its own PC-sample cost, since
	// unwinding records its variables at every alarm during costly().
	pcCost := pr.FuncPCCost(prog.Debug)
	if units["scan"]*pr.Interval <= pcCost["scan"] {
		t.Errorf("scan var cost %d <= pc cost %d; unwinding not inheriting callee cost",
			units["scan"]*pr.Interval, pcCost["scan"])
	}
}

func TestGlobalsSampledEverywhere(t *testing.T) {
	_, res := buildProfiled(t, callerCalleeSrc, 9)
	pr := res.Root()
	samples := pr.VarSamples(debuginfo.GlobalScope, "g_mode")
	if len(samples) == 0 {
		t.Fatal("global g_mode never sampled")
	}
	for _, s := range samples[5:] {
		if s.Value != 9 {
			t.Fatalf("g_mode = %d after assignment, want 9", s.Value)
		}
	}
}

func TestSampleTicksMonotone(t *testing.T) {
	_, res := buildProfiled(t, callerCalleeSrc, 5)
	pr := res.Root()
	var prev int64 = -1
	for _, s := range pr.Samples {
		if s.Tick < prev {
			t.Fatalf("sample ticks not monotone: %d after %d", s.Tick, prev)
		}
		prev = s.Tick
	}
}

func TestSampleChains(t *testing.T) {
	_, res := buildProfiled(t, callerCalleeSrc, 5)
	pr := res.Root()
	// Walking Link chains from the last sample of each VarNode must visit
	// samples in strictly decreasing index order without cycles.
	last := map[int32]int32{}
	for i, s := range pr.Samples {
		if s.Link >= int32(i) {
			t.Fatalf("sample %d links forward to %d", i, s.Link)
		}
		if s.Link >= 0 && pr.Samples[s.Link].VarNode != s.VarNode {
			t.Fatalf("sample %d links across variables", i)
		}
		last[s.VarNode] = int32(i)
	}
	if len(last) == 0 {
		t.Fatal("no samples at all")
	}
}

func TestDeterministicProfiles(t *testing.T) {
	_, res1 := buildProfiled(t, callerCalleeSrc, 5)
	_, res2 := buildProfiled(t, callerCalleeSrc, 5)
	a, b := res1.Root(), res2.Root()
	if len(a.Samples) != len(b.Samples) || a.NumAlarms != b.NumAlarms {
		t.Fatalf("profiles differ across identical runs: %d/%d samples, %d/%d alarms",
			len(a.Samples), len(b.Samples), a.NumAlarms, b.NumAlarms)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestAlarmPhaseChangesSamples(t *testing.T) {
	f, _ := lang.Parse("prog.vp", callerCalleeSrc)
	prog, _ := compiler.Compile(f)
	meta := schema.Translate(schema.Generate(f, schema.Options{}), prog.Debug)
	r1 := sampler.ProfileRun(prog, meta, vm.Config{Inputs: []int64{5}}, sampler.Options{Interval: 37})
	r2 := sampler.ProfileRun(prog, meta, vm.Config{Inputs: []int64{5}, AlarmPhase: 17}, sampler.Options{Interval: 37})
	if len(r1.Root().Samples) == 0 {
		t.Fatal("no samples")
	}
	same := len(r1.Root().Samples) == len(r2.Root().Samples)
	if same {
		for i := range r1.Root().Samples {
			if r1.Root().Samples[i] != r2.Root().Samples[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("alarm phase had no effect on samples")
	}
}

func TestMultiProcessProfiling(t *testing.T) {
	src := `
var cfg = 3;
func child_main(n) {
	var i = 0;
	while (i < n) { work(200); i++; }
}
func main() {
	spawn("child_main", 30);
	work(500);
}`
	prog, res := buildProfiled(t, src)
	if len(res.Profiles) != 2 {
		t.Fatalf("%d profiles, want 2", len(res.Profiles))
	}
	child := res.Profiles[1]
	cost := child.FuncPCCost(prog.Debug)
	if cost["child_main"] == 0 {
		t.Error("child process not profiled")
	}
	merged := sampler.MergeProfiles(res.Profiles)
	var mergedHist, rootHist, childHist int64
	for pc := range merged.Hist {
		mergedHist += merged.Hist[pc]
		rootHist += res.Profiles[0].Hist[pc]
		childHist += res.Profiles[1].Hist[pc]
	}
	if mergedHist != rootHist+childHist {
		t.Errorf("merged hist %d != %d + %d", mergedHist, rootHist, childHist)
	}
	if len(merged.Samples) != len(res.Profiles[0].Samples)+len(res.Profiles[1].Samples) {
		t.Error("merged samples lost records")
	}
}

func TestOverlapChains(t *testing.T) {
	// Two locals plus a global are accessible at the same PCs; all three
	// must be recorded at a single alarm via the link chain.
	src := `
var gg = 77;
func main() {
	var a = 11;
	var b = 22;
	if (a < b) { work(5000); }
	out(a + b + gg);
}`
	_, res := buildProfiled(t, src)
	pr := res.Root()
	if len(pr.VarSamples("main", "a")) == 0 {
		t.Error("a not sampled")
	}
	if len(pr.VarSamples("main", "b")) == 0 {
		t.Error("b not sampled")
	}
	if len(pr.VarSamples(debuginfo.GlobalScope, "gg")) == 0 {
		t.Error("gg not sampled")
	}
	for _, s := range pr.VarSamples("main", "a") {
		if s.Value != 11 {
			t.Fatalf("a = %d, want 11", s.Value)
		}
	}
	for _, s := range pr.VarSamples(debuginfo.GlobalScope, "gg") {
		if s.Value != 77 {
			t.Fatalf("gg = %d, want 77", s.Value)
		}
	}
}

func TestProfileMetrics(t *testing.T) {
	_, res := buildProfiled(t, callerCalleeSrc, 5)
	pr := res.Root()
	if pr.PCTableBytes <= 0 || pr.VarArrayBytes <= 0 {
		t.Errorf("metrics not populated: %+v", pr)
	}
	if pr.SampleBytes <= 0 || pr.TotalTicks <= 0 {
		t.Errorf("metrics not populated: %+v", pr)
	}
}

func TestPointerFlagPropagates(t *testing.T) {
	src := `
func main() {
	var p = alloc();
	if (p != 0) { work(3000); }
}`
	_, res := buildProfiled(t, src)
	pr := res.Root()
	samples := pr.VarSamples("main", "p")
	if len(samples) == 0 {
		t.Fatal("pointer variable not sampled")
	}
	for _, s := range samples {
		if !s.Ptr {
			t.Fatal("sample lost pointer flag")
		}
	}
	found := false
	for _, l := range pr.Layout {
		if l.Name == "p" && l.IsPointer {
			found = true
		}
	}
	if !found {
		t.Error("layout entry lost pointer flag")
	}
}
