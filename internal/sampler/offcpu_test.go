package sampler_test

import (
	"testing"

	"vprof/internal/analysis"
	"vprof/internal/compiler"
	"vprof/internal/lang"
	"vprof/internal/sampler"
	"vprof/internal/schema"
	"vprof/internal/vm"
)

// Lock-contention scenario for off-CPU profiling (the paper's §7 future-work
// direction): a checkpointer holds a mutex while flushing; when a wrong
// constraint makes it flush everything, workers block on the mutex for the
// whole flush. The blocked time is invisible to a CPU profiler but dominates
// the off-CPU profile, and the mutex-hold-time variable carries the anomaly.
const lockSrc = `
var checkpoint_all;
var dirty_pages;
var mutex_hold_ticks;

func buf_flush_batch(n) {
	work(n * 3);
	return n * 3;
}

func log_checkpointer(rounds) {
	for (var r = 0; r < rounds; r++) {
		var to_flush = 64;
		if (checkpoint_all > 0) {
			to_flush = dirty_pages;
		}
		mutex_hold_ticks = buf_flush_batch(to_flush);
		work(40);
	}
	return 0;
}

func log_write_up_to(w) {
	block(mutex_hold_ticks);
	work(25);
	return w;
}

func db_worker(n) {
	for (var i = 0; i < n; i++) {
		log_write_up_to(i);
		work(60);
	}
	return 0;
}

func main() {
	checkpoint_all = input(0);
	dirty_pages = input(1);
	log_checkpointer(input(2));
	db_worker(input(3));
}
`

func TestOffCPUProfileSeparatesBlockedTime(t *testing.T) {
	f, err := lang.Parse("log0log.vp", lockSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	sch := schema.Generate(f, schema.Options{})
	meta := schema.Translate(sch, prog.Debug)

	buggyCfg := vm.Config{Inputs: []int64{1, 900, 6, 40}}

	// CPU profile: block() time must be invisible.
	cpu := sampler.ProfileRun(prog, meta, buggyCfg, sampler.Options{Interval: 53})
	cpuCost := sampler.MergeProfiles(cpu.Profiles).FuncPCCost(prog.Debug)
	if cpuCost["log_write_up_to"] > cpuCost["buf_flush_batch"] {
		t.Errorf("CPU profile: waiter %v should be below flusher %v",
			cpuCost["log_write_up_to"], cpuCost["buf_flush_batch"])
	}

	// Off-CPU profile: only blocked instants are recorded, all inside the
	// waiter.
	off := sampler.ProfileRun(prog, meta, buggyCfg, sampler.Options{Interval: 53, OffCPU: true})
	offProf := sampler.MergeProfiles(off.Profiles)
	offCost := offProf.FuncPCCost(prog.Debug)
	if len(offCost) == 0 {
		t.Fatal("off-CPU profile empty")
	}
	for fn := range offCost {
		if fn != "log_write_up_to" {
			t.Errorf("off-CPU samples in %s; blocking happens only in log_write_up_to", fn)
		}
	}
	// Blocked time dominates this workload: the off-CPU cost must exceed
	// the waiter's CPU cost.
	if offCost["log_write_up_to"] <= cpuCost["log_write_up_to"] {
		t.Errorf("off-CPU cost %v <= CPU cost %v", offCost["log_write_up_to"], cpuCost["log_write_up_to"])
	}
	// The mutex-hold variable is sampled during blocked instants.
	if len(offProf.VarSamples("#global", "mutex_hold_ticks")) == 0 {
		t.Error("mutex_hold_ticks not sampled while blocked")
	}
}

func TestOffCPUValueAssistedDiagnosis(t *testing.T) {
	f, err := lang.Parse("log0log.vp", lockSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	sch := schema.Generate(f, schema.Options{})
	meta := schema.Translate(sch, prog.Debug)

	profile := func(inputs []int64, run int) *sampler.Profile {
		cfg := vm.Config{Inputs: inputs, AlarmPhase: int64(7*run + 3), Seed: uint64(run + 1)}
		res := sampler.ProfileRun(prog, meta, cfg, sampler.Options{Interval: 53, OffCPU: true})
		return sampler.MergeProfiles(res.Profiles)
	}
	in := analysis.Input{Debug: prog.Debug, Schema: sch}
	for run := 0; run < 3; run++ {
		in.Normal = append(in.Normal, profile([]int64{0, 900, 6, 40}, run))
		in.Buggy = append(in.Buggy, profile([]int64{1, 900, 6, 40}, run))
	}
	rep, err := analysis.Analyze(in, analysis.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// The blocking site and its callers share the inherited blocked cost
	// (virtual unwinding): the waiter must rank in the top two.
	if r := rep.Rank("log_write_up_to"); r < 1 || r > 2 {
		t.Fatalf("waiter ranked %d\n%s", r, rep.Render(5))
	}
	// The mutex-hold-time variable — whose writer is the buggy
	// checkpointer — carries a zero discount (192 ticks normal vs 2700
	// buggy at every blocked sample).
	vr := rep.Variables["#global\x00mutex_hold_ticks"]
	if vr == nil || !vr.Tested {
		t.Fatalf("mutex_hold_ticks not analyzed: %+v", vr)
	}
	if vr.Discount != 0 {
		t.Errorf("mutex_hold_ticks discount = %v, want 0", vr.Discount)
	}
	// The checkpointer's wrong constraint is visible too: checkpoint_all
	// is an anomalous conditional variable.
	ca := rep.Variables["#global\x00checkpoint_all"]
	if ca == nil || !ca.Tested || ca.Discount >= 0.8 {
		t.Errorf("checkpoint_all not flagged: %+v", ca)
	}
}

func TestWallClockSemantics(t *testing.T) {
	src := `func main() { work(100); block(400); work(100); }`
	f, err := lang.Parse("t.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog, vm.Config{})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.BlockedTicks() != 400 {
		t.Errorf("blocked = %d, want 400", m.BlockedTicks())
	}
	if m.WallTicks() != m.Ticks()+400 {
		t.Errorf("wall %d != cpu %d + 400", m.WallTicks(), m.Ticks())
	}
	// CPU alarms do not fire while blocked; wall alarms do.
	var cpuAlarms, wallBlocked, wallRunning int
	m2 := vm.New(prog, vm.Config{
		AlarmInterval:     50,
		OnAlarm:           func(*vm.VM) { cpuAlarms++ },
		WallAlarmInterval: 50,
		OnWallAlarm: func(_ *vm.VM, blocked bool) {
			if blocked {
				wallBlocked++
			} else {
				wallRunning++
			}
		},
	})
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if cpuAlarms < 3 || cpuAlarms > 6 {
		t.Errorf("cpu alarms = %d for ~200 cpu ticks at 50", cpuAlarms)
	}
	if wallBlocked < 7 || wallBlocked > 9 {
		t.Errorf("blocked wall alarms = %d for 400 blocked ticks at 50", wallBlocked)
	}
	if wallRunning < 3 || wallRunning > 6 {
		t.Errorf("running wall alarms = %d", wallRunning)
	}
}

func TestMaxWallTicks(t *testing.T) {
	src := `func main() { while (true) { block(1000); } }`
	f, err := lang.Parse("t.vp", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog, vm.Config{MaxWallTicks: 50000})
	if err := m.Run(); err != vm.ErrTicksExceeded {
		t.Fatalf("err = %v, want ErrTicksExceeded", err)
	}
	if m.WallTicks() < 50000 {
		t.Errorf("wall = %d", m.WallTicks())
	}
	// CPU ticks stay small: the program is blocked nearly all the time.
	if m.Ticks() > m.WallTicks()/10 {
		t.Errorf("cpu %d should be a sliver of wall %d", m.Ticks(), m.WallTicks())
	}
}
