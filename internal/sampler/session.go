package sampler

import (
	"context"
	"time"

	"vprof/internal/compiler"
	"vprof/internal/debuginfo"
	"vprof/internal/vm"
)

// RunResult is the outcome of one profiled execution of a program's process
// tree: one Profile per process (pid order, root first), plus the raw
// processes for callers that need VM state (outputs, branch counts).
type RunResult struct {
	Profiles []*Profile
	Procs    []vm.Process
	// WallTime is the real time spent executing (for overhead reporting).
	WallTime time.Duration
}

// Root returns the root process profile.
func (r *RunResult) Root() *Profile { return r.Profiles[0] }

// Recycle returns every process VM's arenas to the execution pool (see
// vm.Recycle). Callers that only keep the Profiles — the common case —
// should call it once done with Procs; scalar VM state (ticks, outputs)
// stays readable afterwards.
func (r *RunResult) Recycle() { vm.RecycleProcesses(r.Procs) }

// TotalTicks sums simulated time across processes.
func (r *RunResult) TotalTicks() int64 {
	var t int64
	for _, p := range r.Procs {
		t += p.VM.Ticks()
	}
	return t
}

// ProfileRun executes prog (and any spawned children) under the profiler,
// monitoring the given variable metadata, and returns per-process profiles.
// baseCfg supplies workload inputs, seed and tick budget; its alarm fields
// are overridden. An AlarmPhase in baseCfg is honored, letting repeated runs
// sample at different phases.
func ProfileRun(prog *compiler.Program, metadata []debuginfo.VarLoc, baseCfg vm.Config, opts Options) *RunResult {
	res, _ := ProfileRunContext(context.Background(), prog, metadata, baseCfg, opts)
	return res
}

// ProfileRunContext is ProfileRun with cooperative cancellation: the context
// is checked at every profiling alarm (cancellation granularity is one alarm
// interval) and the VM is interrupted once it is canceled. On cancellation
// the partial result is returned alongside ctx.Err(). A context that can
// never be canceled adds no per-alarm work, so ProfileRun stays byte-for-byte
// identical to its pre-context behavior.
func ProfileRunContext(ctx context.Context, prog *compiler.Program, metadata []debuginfo.VarLoc, baseCfg vm.Config, opts Options) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done()
	start := time.Now()
	profilers := map[int]*Profiler{}
	interval := opts.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	procs := vm.RunProcesses(prog, func(pid int) vm.Config {
		p := New(prog, metadata, opts)
		profilers[pid] = p
		cfg := baseCfg
		if opts.OffCPU {
			cfg.WallAlarmInterval = interval
			cfg.OnWallAlarm = p.OnWallAlarm
			if done != nil {
				inner := cfg.OnWallAlarm
				cfg.OnWallAlarm = func(m *vm.VM, blocked bool) {
					select {
					case <-done:
						m.Interrupt(ctx.Err())
					default:
					}
					inner(m, blocked)
				}
			}
		} else {
			cfg.AlarmInterval = interval
			cfg.OnAlarm = p.OnAlarm
			if done != nil {
				inner := cfg.OnAlarm
				cfg.OnAlarm = func(m *vm.VM) {
					select {
					case <-done:
						m.Interrupt(ctx.Err())
					default:
					}
					inner(m)
				}
			}
		}
		return cfg
	})
	res := &RunResult{Procs: procs}
	for _, proc := range procs {
		res.Profiles = append(res.Profiles, profilers[proc.Pid].Finish(proc.Pid, proc.VM.Ticks()))
	}
	res.WallTime = time.Since(start)
	return res, ctx.Err()
}

// Run executes prog without any profiler attached (the "w/o profiling"
// baseline of the paper's Figure 7) and reports wall time and processes.
func Run(prog *compiler.Program, baseCfg vm.Config) ([]vm.Process, time.Duration) {
	start := time.Now()
	procs := vm.RunProcesses(prog, func(int) vm.Config { return baseCfg })
	return procs, time.Since(start)
}

// MergeProfiles combines per-process profiles of one run into a single
// profile (vProf's fix of gprof's multi-process handling: per-pid gmon files
// merged in analysis). Histograms and samples are concatenated; samples keep
// their per-process time order, which is sufficient for per-variable series
// because a variable's samples are grouped before analysis.
func MergeProfiles(profiles []*Profile) *Profile {
	if len(profiles) == 0 {
		return nil
	}
	out := &Profile{
		Pid:      0,
		File:     profiles[0].File,
		Interval: profiles[0].Interval,
		Hist:     make([]int64, len(profiles[0].Hist)),
	}
	// Layouts may be identical across processes (same metadata); build a
	// merged layout and remap sample indices.
	layoutIdx := map[string]int32{}
	for _, pr := range profiles {
		out.TotalTicks += pr.TotalTicks
		out.NumAlarms += pr.NumAlarms
		out.PCTableBytes = max64(out.PCTableBytes, pr.PCTableBytes)
		out.VarArrayBytes = max64(out.VarArrayBytes, pr.VarArrayBytes)
		out.SampleBytes += pr.SampleBytes
		if out.InitDuration < pr.InitDuration {
			out.InitDuration = pr.InitDuration
		}
		for pc, n := range pr.Hist {
			out.Hist[pc] += n
		}
		remap := make([]int32, len(pr.Layout))
		for i, l := range pr.Layout {
			key := l.Func + "\x00" + l.Name
			if idx, ok := layoutIdx[key]; ok {
				remap[i] = idx
				continue
			}
			idx := int32(len(out.Layout))
			out.Layout = append(out.Layout, l)
			layoutIdx[key] = idx
			remap[i] = idx
		}
		for _, s := range pr.Samples {
			s.Layout = remap[s.Layout]
			s.Link = -1 // links are per-process; invalidated by merging
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
