package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"vprof/internal/obs"
)

func TestForEachCtxNilAndBackgroundMatchForEach(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		var ran atomic.Int64
		if err := ForEachCtx(ctx, 4, 100, func(i int) { ran.Add(1) }); err != nil {
			t.Fatalf("ctx=%v: err = %v", ctx, err)
		}
		if ran.Load() != 100 {
			t.Fatalf("ctx=%v: ran %d of 100", ctx, ran.Load())
		}
	}
}

func TestForEachCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEachCtx(ctx, 4, 10, func(i int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("fn ran despite pre-canceled context")
	}
}

// TestForEachCtxCancelDrainsInFlight cancels mid-run and checks that (a) the
// in-flight tasks finish rather than being abandoned, (b) no new index is
// claimed afterwards, and (c) ctx.Err() is surfaced. Run under -race this
// also proves the drain path has no data races.
func TestForEachCtxCancelDrainsInFlight(t *testing.T) {
	const workers, n = 4, 64
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started, finished atomic.Int64
	var once sync.Once
	err := ForEachCtx(ctx, workers, n, func(i int) {
		started.Add(1)
		// The first wave of tasks blocks until the test cancels; every task
		// that starts must still run to completion (drain, not abandon).
		once.Do(func() {
			cancel()
			close(release)
		})
		<-release
		finished.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started.Load() != finished.Load() {
		t.Fatalf("started %d but finished %d: in-flight tasks were abandoned", started.Load(), finished.Load())
	}
	if started.Load() >= n {
		t.Fatalf("all %d tasks ran despite cancellation", n)
	}
}

func TestMapCtxCompletesWithoutCancel(t *testing.T) {
	got, err := MapCtx(context.Background(), 3, 5, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMapErrCtxCancellationBeatsIndexError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	_, err := MapErrCtx(ctx, 1, 10, func(i int) (int, error) {
		if i == 0 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled to take precedence", err)
	}

	// Without cancellation the lowest-index error still wins.
	_, err = MapErrCtx(context.Background(), 4, 10, func(i int) (int, error) {
		if i%3 == 1 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestInstrumentCountsTasks(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)
	ForEach(4, 50, func(i int) {})
	ForEach(1, 10, func(i int) {})
	if err := ForEachCtx(context.Background(), 2, 5, func(i int) {}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("vprof_parallel_tasks_total", "").Value(); got != 65 {
		t.Fatalf("tasks_total = %v, want 65", got)
	}
	if got := reg.Gauge("vprof_parallel_queue_depth", "").Value(); got != 0 {
		t.Fatalf("queue_depth after drain = %v, want 0", got)
	}
	if got := reg.Gauge("vprof_parallel_active_workers", "").Value(); got != 0 {
		t.Fatalf("active_workers after drain = %v, want 0", got)
	}
}
