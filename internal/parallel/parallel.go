// Package parallel is the analysis pipeline's deterministic fan-out engine:
// a bounded worker pool whose results are always merged in stable index
// order, so a computation parallelized with it produces byte-for-byte the
// output of its sequential counterpart.
//
// The contract every caller relies on:
//
//   - Work is identified by a dense index range [0, n). Each index writes
//     only its own result slot, so the merged result order never depends on
//     goroutine scheduling.
//   - workers <= 1 runs inline on the calling goroutine — the legacy
//     sequential path, with no goroutines involved at all.
//   - Errors and panics are reported deterministically: when several
//     indices fail, the lowest index wins.
//
// The worker count for a whole invocation is resolved once via Workers:
// an explicit request beats the VPROF_WORKERS environment variable, which
// beats GOMAXPROCS.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable consulted when no explicit worker
// count is requested.
const EnvWorkers = "VPROF_WORKERS"

// Workers resolves an effective worker count: requested if positive, else
// the VPROF_WORKERS environment variable if set to a positive integer, else
// GOMAXPROCS. The result is always at least 1.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines.
// Indices are handed out by an atomic counter, so the pool is bounded and
// work-stealing; fn must confine its writes to per-index state. A panic in
// any fn is re-raised on the calling goroutine after all workers finish
// (lowest panicking index wins, so repeated runs fail identically).
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	m := poolMetrics.Load()
	m.pending.Add(float64(n))
	if workers <= 1 {
		for i := 0; i < n; i++ {
			m.active.Inc()
			fn(i)
			m.active.Dec()
			m.tasks.Inc()
			m.pending.Dec()
		}
		return
	}
	panics := make([]any, n)
	var panicked atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				m.active.Inc()
				runOne(i, fn, panics, &panicked)
				m.active.Dec()
				m.tasks.Inc()
				m.pending.Dec()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
	}
}

// runOne isolates one index so a panic is captured (by index, for
// deterministic re-raise) without killing the worker goroutine.
func runOne(i int, fn func(int), panics []any, panicked *atomic.Bool) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = r
			panicked.Store(true)
		}
	}()
	fn(i)
}

// Map computes fn(i) for every i in [0, n) on up to workers goroutines and
// returns the results in index order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is Map for fallible work. All indices run to completion regardless
// of failures (the pool does not cancel); the returned error is the one from
// the lowest failing index, so an error surfaced under workers=8 is the same
// error the sequential path would have hit first.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
