package parallel

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(7); got != 7 {
		t.Errorf("explicit request: %d, want 7", got)
	}
	t.Setenv(EnvWorkers, "3")
	if got := Workers(0); got != 3 {
		t.Errorf("env fallback: %d, want 3", got)
	}
	if got := Workers(2); got != 2 {
		t.Errorf("explicit beats env: %d, want 2", got)
	}
	t.Setenv(EnvWorkers, "not-a-number")
	if got, want := Workers(0), max(runtime.GOMAXPROCS(0), 1); got != want {
		t.Errorf("bad env ignored: %d, want %d", got, want)
	}
	os.Unsetenv(EnvWorkers)
	if got := Workers(0); got < 1 {
		t.Errorf("default workers = %d, want >= 1", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 53
		counts := make([]atomic.Int64, n)
		ForEach(workers, n, func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndSequential(t *testing.T) {
	ForEach(4, 0, func(int) { t.Error("fn called for n=0") })
	// workers<=1 must run inline: goroutine-count stays flat and order is
	// strictly ascending.
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
}

func TestMapDeterministicOrder(t *testing.T) {
	want := Map(1, 200, func(i int) string { return fmt.Sprintf("r%d", i*i) })
	for _, workers := range []int{2, 4, 16} {
		got := Map(workers, 200, func(i int) string { return fmt.Sprintf("r%d", i*i) })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapErrLowestIndexWins(t *testing.T) {
	errA := errors.New("fail-10")
	errB := errors.New("fail-40")
	fn := func(i int) (int, error) {
		switch i {
		case 10:
			return 0, errA
		case 40:
			return 0, errB
		}
		return i, nil
	}
	for _, workers := range []int{1, 8} {
		_, err := MapErr(workers, 64, fn)
		if !errors.Is(err, errA) {
			t.Errorf("workers=%d: err = %v, want %v (lowest index)", workers, err, errA)
		}
	}
	out, err := MapErr(8, 8, func(i int) (int, error) { return i * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestForEachPanicLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 6} {
		func() {
			defer func() {
				r := recover()
				if r != "boom-3" {
					t.Errorf("workers=%d: recovered %v, want boom-3", workers, r)
				}
			}()
			ForEach(workers, 32, func(i int) {
				if i == 3 || i == 17 {
					panic(fmt.Sprintf("boom-%d", i))
				}
			})
		}()
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	ForEach(workers, 200, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}
