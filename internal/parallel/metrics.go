package parallel

import (
	"sync/atomic"

	"vprof/internal/obs"
)

// metrics holds the pool's instrumentation handles. The fields are nil-safe
// obs metrics, so the uninstrumented default (all nil) costs one pointer
// load plus nil-receiver no-ops per task.
type metrics struct {
	tasks   *obs.Counter // tasks completed across all fan-outs
	active  *obs.Gauge   // tasks currently executing (pool utilization)
	pending *obs.Gauge   // tasks admitted but not yet finished (queue depth)
}

// poolMetrics is swapped atomically so Instrument is safe to call while
// fan-outs are running (e.g. from tests).
var poolMetrics = func() *atomic.Pointer[metrics] {
	p := new(atomic.Pointer[metrics])
	p.Store(&metrics{})
	return p
}()

// Instrument registers the worker-pool metric families on reg and routes all
// subsequent fan-outs through them. Passing a nil registry restores the
// uninstrumented default.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		poolMetrics.Store(&metrics{})
		return
	}
	poolMetrics.Store(&metrics{
		tasks: reg.Counter("vprof_parallel_tasks_total",
			"Fan-out tasks completed by the analysis worker pool."),
		active: reg.Gauge("vprof_parallel_active_workers",
			"Fan-out tasks currently executing."),
		pending: reg.Gauge("vprof_parallel_queue_depth",
			"Fan-out tasks admitted but not yet finished."),
	})
}
