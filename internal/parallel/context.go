package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForEachCtx is ForEach with cooperative cancellation: once ctx is canceled
// no new index is claimed, in-flight indices drain, and ctx.Err() is
// returned iff at least one index was never run. A nil or never-canceled
// context makes ForEachCtx behave exactly like ForEach (including the
// zero-goroutine sequential path), so the ctx-less wrappers delegate here.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done()
	if done == nil {
		ForEach(workers, n, fn)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers > n {
		workers = n
	}
	m := poolMetrics.Load()
	m.pending.Add(float64(n))
	completed := 0
	if workers <= 1 {
		for ; completed < n; completed++ {
			select {
			case <-done:
				m.pending.Add(float64(completed - n))
				return ctx.Err()
			default:
			}
			m.active.Inc()
			fn(completed)
			m.active.Dec()
			m.tasks.Inc()
			m.pending.Dec()
		}
		return nil
	}
	panics := make([]any, n)
	var panicked atomic.Bool
	var next, ran atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				m.active.Inc()
				runOne(i, fn, panics, &panicked)
				m.active.Dec()
				m.tasks.Inc()
				m.pending.Dec()
				ran.Add(1)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
	}
	if int(ran.Load()) != n {
		m.pending.Add(float64(ran.Load()) - float64(n))
		return ctx.Err()
	}
	return nil
}

// MapCtx is Map with cancellation: on early cancellation the returned slice
// holds results only for the indices that ran, alongside ctx.Err().
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out, err
}

// MapErrCtx is MapErr with cancellation. Cancellation takes precedence over
// per-index errors (an aborted run reports why it aborted); otherwise the
// lowest failing index wins, exactly as in MapErr.
func MapErrCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	if err := ForEachCtx(ctx, workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	}); err != nil {
		return out, err
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
