package store

// Sketch persistence: alongside the segments, the store keeps
// <dir>/sketches.log — an append-only log of per-blob variable sketches
// (internal/sketch), folded from each profile at ingest. The incremental
// diagnosis path reads only these sketches, never the raw blobs, so
// re-diagnosing a workload with one new run touches kilobytes instead of
// re-decoding the whole corpus.
//
// The log mirrors the segment discipline: an 8-byte header ("VSKL" magic +
// version), then one CRC32C frame per sketch ([size][crc][payload], the
// payload being the canonical profilefmt sketch encoding). Sketches are
// derived data: a failed sketch append never fails the push, recovery
// truncates a torn tail (or quarantines the whole file on a bad header)
// without dropping any manifest record, and a missing or incomplete log is
// rebuilt lazily — GetSketch re-folds from the raw blob and re-appends, so
// a store created before sketches existed upgrades in place.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"vprof/internal/faultfs"
	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
	"vprof/internal/sketch"
)

const (
	sketchLogName   = "sketches.log"
	sketchMagic     = "VSKL"
	sketchVersion   = 1
	sketchHdrSize   = 8
	sketchFrameHdr  = 8
	maxSketchFrame  = 64 << 20 // sanity bound on one framed sketch
	sketchCacheSize = 64
)

func sketchLogHeader() []byte {
	h := make([]byte, sketchHdrSize)
	copy(h, sketchMagic)
	binary.LittleEndian.PutUint32(h[4:], sketchVersion)
	return h
}

func (s *Store) sketchLogPath() string { return filepath.Join(s.dir, sketchLogName) }

// sketchRef locates one sketch frame's payload in the log.
type sketchRef struct {
	offset int64
	size   int64
}

// openSketchLog opens (creating if absent) the sketch log for append and
// indexes its surviving frames. Recovery ran first, so every frame present
// passes its CRC; frames whose blob is unknown to the manifest are ignored.
// Called from Open before the store is shared.
func (s *Store) openSketchLog() error {
	path := s.sketchLogPath()
	if _, err := s.fsys.Stat(path); err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			return err
		}
		if err := s.createSketchLog(path); err != nil {
			return err
		}
	}
	data, err := readFileVia(s.fsys, path)
	if err != nil {
		return err
	}
	s.sketchIdx = map[string]sketchRef{}
	off := int64(sketchHdrSize)
	for off+sketchFrameHdr <= int64(len(data)) {
		size := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		payload := data[off+sketchFrameHdr : off+sketchFrameHdr+size]
		if sk, err := profilefmt.UnmarshalSketch(payload); err == nil {
			if _, known := s.blobs[sk.BlobID]; known {
				s.sketchIdx[sk.BlobID] = sketchRef{offset: off + sketchFrameHdr, size: size}
			}
		}
		off += sketchFrameHdr + size
	}
	f, err := s.fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	s.sketchLog, s.sketchLogSize = f, st.Size()
	return nil
}

// createSketchLog births the log via temp-file + rename, like segments.
func (s *Store) createSketchLog(path string) (err error) {
	tmp := path + ".tmp"
	defer func() {
		if err != nil {
			s.fsys.Remove(tmp)
		}
	}()
	f, err := s.fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(sketchLogHeader()); err != nil {
		f.Close()
		return err
	}
	if err = f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return s.fsys.Rename(tmp, path)
}

// appendSketchLocked folds a profile into a sketch and appends its frame.
// Best-effort: sketches are derived data, so any failure only truncates the
// partial frame away and reports the error — the caller must not fail the
// push over it.
func (s *Store) appendSketchLocked(id string, p *sampler.Profile) error {
	if s.sketchLog == nil {
		return errors.New("store: sketch log not open")
	}
	if _, ok := s.sketchIdx[id]; ok {
		return nil
	}
	sk := sketch.FromProfile(p)
	sk.BlobID = id
	payload, err := profilefmt.MarshalSketch(sk)
	if err != nil {
		return err
	}
	if len(payload) > maxSketchFrame {
		return fmt.Errorf("store: sketch frame %d bytes exceeds bound", len(payload))
	}
	frame := make([]byte, sketchFrameHdr+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[sketchFrameHdr:], payload)
	start := s.sketchLogSize
	if n, err := s.sketchLog.Write(frame); err != nil || n != len(frame) {
		if terr := s.sketchLog.Truncate(start); terr == nil {
			s.sketchLogSize = start
		}
		if err == nil {
			err = fmt.Errorf("store: short sketch write")
		}
		return err
	}
	if !s.opts.NoSync {
		if err := s.sketchLog.Sync(); err != nil {
			if terr := s.sketchLog.Truncate(start); terr == nil {
				s.sketchLogSize = start
			}
			return err
		}
	}
	s.sketchLogSize = start + int64(len(frame))
	s.sketchIdx[id] = sketchRef{offset: start + sketchFrameHdr, size: int64(len(payload))}
	s.sketchCacheAddLocked(id, sk)
	s.m.sketchWrites.Inc()
	return nil
}

func (s *Store) sketchCacheAddLocked(id string, sk *sketch.Profile) {
	if _, ok := s.sketchCache[id]; ok {
		return
	}
	for len(s.sketchCache) >= sketchCacheSize && len(s.sketchCacheOrder) > 0 {
		evict := s.sketchCacheOrder[0]
		s.sketchCacheOrder = s.sketchCacheOrder[1:]
		delete(s.sketchCache, evict)
	}
	s.sketchCache[id] = sk
	s.sketchCacheOrder = append(s.sketchCacheOrder, id)
}

// GetSketch returns the sketch for a stored blob: from the in-memory cache,
// else the sketch log, else — the upgrade path for stores that predate
// sketches — by decoding the raw blob, folding it, and persisting the result
// so the rebuild happens once. Sketches served from the cache or the log
// never touch the raw blob or the decoded-profile cache.
func (s *Store) GetSketch(id string) (*sketch.Profile, error) {
	s.mu.Lock()
	if sk, ok := s.sketchCache[id]; ok {
		s.sketchHits++
		s.mu.Unlock()
		s.m.sketchHits.Inc()
		return sk, nil
	}
	s.sketchMiss++
	s.m.sketchMisses.Inc()
	ref, ok := s.sketchIdx[id]
	if !ok {
		s.mu.Unlock()
		return s.rebuildSketch(id)
	}
	path := s.sketchLogPath()
	fsys := s.fsys
	s.mu.Unlock()

	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, ref.size)
	_, rerr := f.ReadAt(payload, ref.offset)
	f.Close()
	if rerr != nil {
		return nil, fmt.Errorf("store: read sketch %s: %w", id, rerr)
	}
	sk, err := profilefmt.UnmarshalSketch(payload)
	if err != nil || sk.BlobID != id {
		// The frame passed its CRC at open but no longer decodes to this
		// blob's sketch (e.g. external truncation since): fall back to a
		// rebuild from the raw blob.
		return s.rebuildSketch(id)
	}
	s.mu.Lock()
	s.sketchCacheAddLocked(id, sk)
	s.mu.Unlock()
	return sk, nil
}

// rebuildSketch is GetSketch's upgrade path: fold the sketch from the raw
// blob and persist it (best effort) so subsequent reads hit the log.
func (s *Store) rebuildSketch(id string) (*sketch.Profile, error) {
	p, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sk, ok := s.sketchCache[id]; ok { // raced with another rebuild
		return sk, nil
	}
	s.sketchRebuilt++
	s.m.sketchRebuilds.Inc()
	if err := s.appendSketchLocked(id, p); err != nil {
		// Persisting is best-effort; still serve the folded sketch.
		sk := sketch.FromProfile(p)
		sk.BlobID = id
		s.sketchCacheAddLocked(id, sk)
		return sk, nil
	}
	return s.sketchCache[id], nil
}

// SketchStats reports sketch cache and rebuild counters.
type SketchStats struct {
	Hits, Misses, Rebuilds int64
	Indexed                int
}

// SketchStats returns sketch-path effectiveness counters.
func (s *Store) SketchStats() SketchStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return SketchStats{
		Hits:     s.sketchHits,
		Misses:   s.sketchMiss,
		Rebuilds: s.sketchRebuilt,
		Indexed:  len(s.sketchIdx),
	}
}

// recoverSketchLog validates <dir>/sketches.log: bad header quarantines the
// whole file (it is derived data — the sketches rebuild from the blobs), a
// torn or corrupt tail is truncated back to the last whole frame. Runs as
// part of recoverDir, before Open replays the log.
func recoverSketchLog(fsys faultfs.FS, dir string, rep *FsckReport, o recoverOpts) error {
	path := filepath.Join(dir, sketchLogName)
	data, err := readFileVia(fsys, path)
	if err != nil {
		return fmt.Errorf("store: unrecoverable: read sketch log: %w", err)
	}
	if data == nil {
		return nil
	}
	if len(data) < sketchHdrSize || string(data[:4]) != sketchMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != sketchVersion {
		rep.Issues = append(rep.Issues, fmt.Sprintf("%s: bad header", sketchLogName))
		return quarantine(fsys, dir, sketchLogName, rep, o)
	}
	off := int64(sketchHdrSize)
	frames := 0
	for {
		if off == int64(len(data)) {
			rep.SketchRecords = frames
			return nil // clean end
		}
		if off+sketchFrameHdr > int64(len(data)) {
			break // torn frame header
		}
		size := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		if size <= 0 || size > maxSketchFrame || off+sketchFrameHdr+size > int64(len(data)) {
			break // torn or nonsense frame
		}
		payload := data[off+sketchFrameHdr : off+sketchFrameHdr+size]
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if crc32.Checksum(payload, castagnoli) != want {
			break // corrupt payload: distrust it and everything after
		}
		if o.verify {
			// A CRC-valid frame that no longer decodes as a sketch is
			// corruption the replay path would silently skip; surface it
			// here so fsck reports it and repair truncates it away.
			if _, err := profilefmt.UnmarshalSketch(payload); err != nil {
				break
			}
		}
		off += sketchFrameHdr + size
		frames++
	}
	torn := int64(len(data)) - off
	rep.SketchRecords = frames
	rep.TruncatedBytes += torn
	rep.Issues = append(rep.Issues,
		fmt.Sprintf("%s: %d torn/corrupt byte(s) after %d whole frame(s)", sketchLogName, torn, frames))
	if o.apply {
		if err := fsys.Truncate(path, off); err != nil {
			return fmt.Errorf("store: unrecoverable: truncate sketch log: %w", err)
		}
		rep.Repaired = append(rep.Repaired, fmt.Sprintf("truncated %s to %d bytes", sketchLogName, off))
	}
	return nil
}
