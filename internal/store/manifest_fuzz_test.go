package store

import (
	"strings"
	"testing"
)

// FuzzManifestDecode hammers the manifest record parser with valid,
// truncated and bit-flipped lines. The invariants: parsing never panics,
// anything that parses re-encodes to a line that parses back to the same
// record (round trip), and damaging a valid line's payload is caught by
// its CRC framing.
func FuzzManifestDecode(f *testing.F) {
	seed := &Entry{
		ID:       strings.Repeat("ab", 32),
		Workload: "redis get/set",
		Label:    LabelNormal,
		Run:      "run 7",
	}
	valid := formatManifestLine(seed, blobRef{segment: 1, offset: 16, size: 128})
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-record
	flipped := []byte(valid)
	flipped[4] ^= 0x20 // bit flip inside the payload
	f.Add(string(flipped))
	f.Add("")
	f.Add("v2\n")
	f.Add("v1 deadbeef 0 12 w normal r\n") // pre-CRC format: must be rejected
	f.Add(strings.TrimSuffix(valid, "\n")) // missing terminator is fine for the parser

	f.Fuzz(func(t *testing.T, line string) {
		e, ref, err := parseManifestLine(line)
		if err != nil {
			return
		}
		re := formatManifestLine(e, ref)
		e2, ref2, err := parseManifestLine(re)
		if err != nil {
			t.Fatalf("re-encoded record rejected: %v\n in: %q\nout: %q", err, line, re)
		}
		// Seq is assigned at index time, not parse time.
		if e2.ID != e.ID || e2.Workload != e.Workload || e2.Label != e.Label ||
			e2.Run != e.Run || e2.Size != e.Size || ref2 != ref {
			t.Fatalf("round trip changed the record:\n%+v %+v\n%+v %+v", e, ref, e2, ref2)
		}
	})
}

// TestManifestDecodeRejectsDamage spot-checks the CRC framing outside the
// fuzzer: every single-byte corruption of a valid record must be rejected
// or decode to the identical record (a flip inside escaped padding can be
// benign only if the CRC still matches, which it cannot).
func TestManifestDecodeRejectsDamage(t *testing.T) {
	e := &Entry{ID: strings.Repeat("cd", 32), Workload: "w", Label: LabelCandidate, Run: "3", Size: 42}
	line := formatManifestLine(e, blobRef{segment: 2, offset: 24, size: 42})
	if _, _, err := parseManifestLine(line); err != nil {
		t.Fatalf("valid line rejected: %v", err)
	}
	for i := 0; i < len(line)-1; i++ { // spare the trailing newline
		raw := []byte(line)
		raw[i] ^= 0x01
		if _, _, err := parseManifestLine(string(raw)); err == nil {
			t.Fatalf("corruption at byte %d accepted: %q", i, raw)
		}
	}
	// Truncations must be rejected too — except dropping only the trailing
	// newline, which the parser tolerates.
	for cut := 1; cut < len(line)-1; cut++ {
		if _, _, err := parseManifestLine(line[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}
