package store_test

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vprof/internal/sketch"
	"vprof/internal/store"
)

// appendSketchFrame appends a CRC-valid frame with an arbitrary payload to a
// closed store's sketches.log — the shape of corruption that flips payload
// bytes and fixes up the checksum, or of a frame written by a future encoder.
func appendSketchFrame(t *testing.T, dir string, payload []byte) {
	t.Helper()
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	copy(frame[8:], payload)
	f, err := os.OpenFile(filepath.Join(dir, "sketches.log"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSketchPersistedAtIngest: a push folds and persists its sketch, and
// GetSketch serves it — from cache or log — without ever touching the
// decoded-profile cache or the raw blob.
func TestSketchPersistedAtIngest(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof := testProfile(3)
	e, _, err := s.Put("w", store.LabelNormal, "0", prof)
	if err != nil {
		t.Fatal(err)
	}
	want := sketch.FromProfile(prof)
	want.BlobID = e.ID

	sk, err := s.GetSketch(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sk, want) {
		t.Fatalf("sketch from warm store differs from direct fold:\n%+v\n%+v", sk, want)
	}
	if st := s.SketchStats(); st.Rebuilds != 0 || st.Indexed != 1 {
		t.Fatalf("warm sketch read caused rebuilds: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold restart: the sketch must come back from the log, not the blob.
	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Recovery().Clean() {
		t.Fatalf("unclean recovery:\n%s", s2.Recovery().Render())
	}
	if got := s2.Recovery().SketchRecords; got != 1 {
		t.Fatalf("recovery saw %d sketch frames, want 1", got)
	}
	before := s2.CacheStats()
	sk2, err := s2.GetSketch(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sk2, want) {
		t.Fatal("sketch from cold log differs")
	}
	after := s2.CacheStats()
	if after.Misses != before.Misses || after.Hits != before.Hits {
		t.Fatalf("sketch read touched the decoded-profile cache: %+v -> %+v", before, after)
	}
	if st := s2.SketchStats(); st.Rebuilds != 0 {
		t.Fatalf("cold sketch read rebuilt from blob: %+v", st)
	}
}

// TestSketchUpgradeFromOldStore: a store created before the sketch log
// existed (simulated by deleting it) rebuilds sketches lazily from raw
// blobs and persists them, so the rebuild happens once.
func TestSketchUpgradeFromOldStore(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := s.Put("w", store.LabelNormal, "0", testProfile(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "sketches.log")); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.SketchStats(); st.Indexed != 0 {
		t.Fatalf("fresh log indexed %d sketches", st.Indexed)
	}
	sk, err := s2.GetSketch(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sk.BlobID != e.ID {
		t.Fatalf("rebuilt sketch has BlobID %q", sk.BlobID)
	}
	if st := s2.SketchStats(); st.Rebuilds != 1 || st.Indexed != 1 {
		t.Fatalf("after upgrade read: %+v, want 1 rebuild persisted", st)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// The rebuild persisted: the next incarnation reads it from the log.
	s3, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, err := s3.GetSketch(e.ID); err != nil {
		t.Fatal(err)
	}
	if st := s3.SketchStats(); st.Rebuilds != 0 {
		t.Fatalf("persisted rebuild not reused: %+v", st)
	}
}

// TestSketchLogTornTailRecovery: a torn sketch frame is truncated away
// without dropping any manifest record, and the lost sketch rebuilds from
// its blob on demand.
func TestSketchLogTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e0, _, err := s.Put("w", store.LabelNormal, "0", testProfile(7))
	if err != nil {
		t.Fatal(err)
	}
	e1, _, err := s.Put("w", store.LabelNormal, "1", testProfile(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the second frame: chop bytes off the end of the log.
	path := filepath.Join(dir, "sketches.log")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Clean() || rec.SketchRecords != 1 || rec.DroppedRecords != 0 {
		t.Fatalf("recovery: %s", rec.Render())
	}
	// Both entries survive; the torn sketch rebuilds.
	for _, e := range []string{e0.ID, e1.ID} {
		if _, err := s2.GetSketch(e); err != nil {
			t.Fatalf("GetSketch(%s): %v", e[:8], err)
		}
	}
	if st := s2.SketchStats(); st.Rebuilds != 1 {
		t.Fatalf("want exactly the torn sketch rebuilt: %+v", st)
	}
	// A second recovery pass is clean.
	rep, err := store.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("store not clean after repair:\n%s", rep.Render())
	}
}

// TestSketchLogUndecodableFrameFsck: a frame whose CRC holds but whose
// payload no longer decodes as a sketch is invisible to the replay path (it
// skips what it cannot decode) — fsck must report it and repair must truncate
// it, without touching the good frames before it.
func TestSketchLogUndecodableFrameFsck(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e0, _, err := s.Put("w", store.LabelNormal, "0", testProfile(11))
	if err != nil {
		t.Fatal(err)
	}
	e1, _, err := s.Put("w", store.LabelNormal, "1", testProfile(12))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	payload := []byte("checksummed garbage that is not a sketch encoding")
	appendSketchFrame(t, dir, payload)
	path := filepath.Join(dir, "sketches.log")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// Fsck is a dry run: it reports the frame but leaves the file alone.
	rep, err := store.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck missed the CRC-valid undecodable frame")
	}
	if rep.SketchRecords != 2 {
		t.Fatalf("fsck counted %d good frames, want 2", rep.SketchRecords)
	}
	if want := int64(8 + len(payload)); rep.TruncatedBytes != want {
		t.Fatalf("fsck would truncate %d bytes, want %d", rep.TruncatedBytes, want)
	}
	found := false
	for _, is := range rep.Issues {
		if strings.Contains(is, "sketches.log") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no sketches.log issue in report:\n%s", rep.Render())
	}
	if fi2, err := os.Stat(path); err != nil || fi2.Size() != fi.Size() {
		t.Fatalf("dry-run fsck changed the log (%d -> %d bytes, err %v)", fi.Size(), fi2.Size(), err)
	}

	// Repair truncates the frame away; the recheck is clean.
	rrep, err := store.Repair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrep.Repaired) == 0 {
		t.Fatalf("repair fixed nothing:\n%s", rrep.Render())
	}
	rep2, err := store.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() || rep2.SketchRecords != 2 {
		t.Fatalf("store not clean after repair:\n%s", rep2.Render())
	}

	// Both real sketches survived the surgery.
	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, id := range []string{e0.ID, e1.ID} {
		if _, err := s2.GetSketch(id); err != nil {
			t.Fatalf("GetSketch(%s): %v", id[:8], err)
		}
	}
	if st := s2.SketchStats(); st.Rebuilds != 0 {
		t.Fatalf("repair cost a good frame: %+v", st)
	}
}

// TestSketchLogUndecodableFrameFastOpen: with SkipOpenVerify a store opens
// right past an undecodable frame (replay skips it) and keeps appending good
// frames after it. Fsck distrusts the bad frame and everything behind it;
// after repair the sketches that rode behind it rebuild from their blobs.
func TestSketchLogUndecodableFrameFastOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e0, _, err := s.Put("w", store.LabelNormal, "0", testProfile(13))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	appendSketchFrame(t, dir, []byte("wedged between two healthy frames"))

	// The fast open tolerates the frame and appends a good one after it.
	s2, err := store.Open(dir, store.Options{SkipOpenVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	e1, _, err := s2.Put("w", store.LabelNormal, "1", testProfile(14))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.GetSketch(e1.ID); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := store.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.SketchRecords != 1 {
		t.Fatalf("fsck after fast open: %d frames, clean=%v:\n%s",
			rep.SketchRecords, rep.Clean(), rep.Render())
	}
	if _, err := store.Repair(dir); err != nil {
		t.Fatal(err)
	}

	// The frame behind the corruption is gone with it; its sketch rebuilds.
	s3, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if !s3.Recovery().Clean() {
		t.Fatalf("unclean reopen after repair:\n%s", s3.Recovery().Render())
	}
	if _, err := s3.GetSketch(e0.ID); err != nil {
		t.Fatal(err)
	}
	if st := s3.SketchStats(); st.Rebuilds != 0 {
		t.Fatalf("frame before the corruption lost: %+v", st)
	}
	if _, err := s3.GetSketch(e1.ID); err != nil {
		t.Fatal(err)
	}
	if st := s3.SketchStats(); st.Rebuilds != 1 {
		t.Fatalf("frame behind the corruption not rebuilt from its blob: %+v", st)
	}
}

// TestSketchLogBadHeaderQuarantined: a sketch log whose header is garbage is
// quarantined whole — it is derived data, so nothing is lost — and a fresh
// log takes its place.
func TestSketchLogBadHeaderQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := s.Put("w", store.LabelNormal, "0", testProfile(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "sketches.log")
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, 8)
	copy(hdr, "XXXX")
	binary.LittleEndian.PutUint32(hdr[4:], 999)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Clean() || len(rec.Quarantined) != 1 || rec.Quarantined[0] != "sketches.log" {
		t.Fatalf("recovery: %s", rec.Render())
	}
	if rec.DroppedRecords != 0 {
		t.Fatalf("quarantining derived data dropped %d records", rec.DroppedRecords)
	}
	if _, err := s2.GetSketch(e.ID); err != nil {
		t.Fatal(err)
	}
	if st := s2.SketchStats(); st.Rebuilds != 1 || st.Indexed != 1 {
		t.Fatalf("sketch not rebuilt into the fresh log: %+v", st)
	}
}
