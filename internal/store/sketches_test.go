package store_test

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vprof/internal/sketch"
	"vprof/internal/store"
)

// TestSketchPersistedAtIngest: a push folds and persists its sketch, and
// GetSketch serves it — from cache or log — without ever touching the
// decoded-profile cache or the raw blob.
func TestSketchPersistedAtIngest(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof := testProfile(3)
	e, _, err := s.Put("w", store.LabelNormal, "0", prof)
	if err != nil {
		t.Fatal(err)
	}
	want := sketch.FromProfile(prof)
	want.BlobID = e.ID

	sk, err := s.GetSketch(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sk, want) {
		t.Fatalf("sketch from warm store differs from direct fold:\n%+v\n%+v", sk, want)
	}
	if st := s.SketchStats(); st.Rebuilds != 0 || st.Indexed != 1 {
		t.Fatalf("warm sketch read caused rebuilds: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold restart: the sketch must come back from the log, not the blob.
	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Recovery().Clean() {
		t.Fatalf("unclean recovery:\n%s", s2.Recovery().Render())
	}
	if got := s2.Recovery().SketchRecords; got != 1 {
		t.Fatalf("recovery saw %d sketch frames, want 1", got)
	}
	before := s2.CacheStats()
	sk2, err := s2.GetSketch(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sk2, want) {
		t.Fatal("sketch from cold log differs")
	}
	after := s2.CacheStats()
	if after.Misses != before.Misses || after.Hits != before.Hits {
		t.Fatalf("sketch read touched the decoded-profile cache: %+v -> %+v", before, after)
	}
	if st := s2.SketchStats(); st.Rebuilds != 0 {
		t.Fatalf("cold sketch read rebuilt from blob: %+v", st)
	}
}

// TestSketchUpgradeFromOldStore: a store created before the sketch log
// existed (simulated by deleting it) rebuilds sketches lazily from raw
// blobs and persists them, so the rebuild happens once.
func TestSketchUpgradeFromOldStore(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := s.Put("w", store.LabelNormal, "0", testProfile(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "sketches.log")); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.SketchStats(); st.Indexed != 0 {
		t.Fatalf("fresh log indexed %d sketches", st.Indexed)
	}
	sk, err := s2.GetSketch(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sk.BlobID != e.ID {
		t.Fatalf("rebuilt sketch has BlobID %q", sk.BlobID)
	}
	if st := s2.SketchStats(); st.Rebuilds != 1 || st.Indexed != 1 {
		t.Fatalf("after upgrade read: %+v, want 1 rebuild persisted", st)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// The rebuild persisted: the next incarnation reads it from the log.
	s3, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, err := s3.GetSketch(e.ID); err != nil {
		t.Fatal(err)
	}
	if st := s3.SketchStats(); st.Rebuilds != 0 {
		t.Fatalf("persisted rebuild not reused: %+v", st)
	}
}

// TestSketchLogTornTailRecovery: a torn sketch frame is truncated away
// without dropping any manifest record, and the lost sketch rebuilds from
// its blob on demand.
func TestSketchLogTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e0, _, err := s.Put("w", store.LabelNormal, "0", testProfile(7))
	if err != nil {
		t.Fatal(err)
	}
	e1, _, err := s.Put("w", store.LabelNormal, "1", testProfile(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the second frame: chop bytes off the end of the log.
	path := filepath.Join(dir, "sketches.log")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Clean() || rec.SketchRecords != 1 || rec.DroppedRecords != 0 {
		t.Fatalf("recovery: %s", rec.Render())
	}
	// Both entries survive; the torn sketch rebuilds.
	for _, e := range []string{e0.ID, e1.ID} {
		if _, err := s2.GetSketch(e); err != nil {
			t.Fatalf("GetSketch(%s): %v", e[:8], err)
		}
	}
	if st := s2.SketchStats(); st.Rebuilds != 1 {
		t.Fatalf("want exactly the torn sketch rebuilt: %+v", st)
	}
	// A second recovery pass is clean.
	rep, err := store.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("store not clean after repair:\n%s", rep.Render())
	}
}

// TestSketchLogBadHeaderQuarantined: a sketch log whose header is garbage is
// quarantined whole — it is derived data, so nothing is lost — and a fresh
// log takes its place.
func TestSketchLogBadHeaderQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := s.Put("w", store.LabelNormal, "0", testProfile(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "sketches.log")
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, 8)
	copy(hdr, "XXXX")
	binary.LittleEndian.PutUint32(hdr[4:], 999)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Clean() || len(rec.Quarantined) != 1 || rec.Quarantined[0] != "sketches.log" {
		t.Fatalf("recovery: %s", rec.Render())
	}
	if rec.DroppedRecords != 0 {
		t.Fatalf("quarantining derived data dropped %d records", rec.DroppedRecords)
	}
	if _, err := s2.GetSketch(e.ID); err != nil {
		t.Fatal(err)
	}
	if st := s2.SketchStats(); st.Rebuilds != 1 || st.Indexed != 1 {
		t.Fatalf("sketch not rebuilt into the fresh log: %+v", st)
	}
}
