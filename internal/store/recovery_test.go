package store_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vprof/internal/faultfs"
	"vprof/internal/profilefmt"
	"vprof/internal/store"
)

// ackedPush records one push the store acknowledged before a crash.
type ackedPush struct {
	workload string
	label    store.Label
	run      string
	id       string
}

// crashIngest replays a fixed ingest sequence (two workloads, blobs big
// enough to force segment rollovers) against s, returning every push that
// was acknowledged before the first error.
func crashIngest(t *testing.T, s *store.Store) ([]ackedPush, error) {
	t.Helper()
	var acked []ackedPush
	for i := 0; i < 6; i++ {
		wl := "redis"
		if i%2 == 1 {
			wl = "mysql"
		}
		label := store.LabelNormal
		if i >= 4 {
			label = store.LabelCandidate
		}
		run := fmt.Sprint(i / 2)
		e, _, err := s.PutBlob(wl, label, run, mustBlob(t, int64(i)))
		if err != nil {
			return acked, err
		}
		acked = append(acked, ackedPush{workload: wl, label: label, run: run, id: e.ID})
	}
	return acked, nil
}

func mustBlob(t *testing.T, seed int64) []byte {
	t.Helper()
	blob, err := profilefmt.Marshal(testProfile(seed))
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// crashOpts keeps segments small so the ingest sequence rolls over and the
// crash matrix covers segment-creation (temp + rename) crash points too.
func crashOpts(fsys faultfs.FS) store.Options {
	return store.Options{FS: fsys, SegmentSize: 2048}
}

// TestCrashReplayMatrix is the tentpole's durability proof: the same
// ingest is killed at every single mutating filesystem operation (both
// clean-cut and torn-write crashes), the directory is reopened like a
// process restart, and every acknowledged push must still be there, with a
// clean bill of health from Fsck afterwards.
func TestCrashReplayMatrix(t *testing.T) {
	// Dry run: count how many mutating ops the full ingest performs.
	dry := faultfs.NewInjector(nil)
	s, err := store.Open(t.TempDir(), crashOpts(dry))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crashIngest(t, s); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	total := dry.Mutations()
	if total < 20 {
		t.Fatalf("suspiciously few crash points: %d", total)
	}

	for n := 1; n <= total; n++ {
		n := n
		t.Run(fmt.Sprintf("crash-at-%02d", n), func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewInjector(nil)
			inj.CrashAt(n)
			inj.SetTorn(n%2 == 0)

			var acked []ackedPush
			s, err := store.Open(dir, crashOpts(inj))
			if err == nil {
				acked, _ = crashIngest(t, s)
				s.Close()
			}
			if !inj.Crashed() {
				t.Fatalf("crash point %d never reached", n)
			}

			// Restart: reopen through the real filesystem.
			s2, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			for _, a := range acked {
				e, ok := s2.Lookup(a.workload, a.label, a.run)
				if !ok {
					t.Fatalf("acked push %v lost after crash\nrecovery: %s", a, s2.Recovery().Render())
				}
				if e.ID != a.id {
					t.Fatalf("acked push %v came back as %s", a, e.ID)
				}
				if _, err := s2.Get(a.id); err != nil {
					t.Fatalf("acked blob %s unreadable after crash: %v", a.id, err)
				}
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}

			// Open repaired whatever the crash tore; Fsck must now agree.
			rep, err := store.Fsck(dir)
			if err != nil {
				t.Fatalf("fsck after recovery: %v", err)
			}
			if !rep.Clean() {
				t.Fatalf("store not clean after recovery:\n%s", rep.Render())
			}
		})
	}
}

// TestCrashRecoveredStoreAcceptsWrites: a store reopened after a crash is
// not read-only — ingest continues where it left off.
func TestCrashRecoveredStoreAcceptsWrites(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil)
	inj.CrashAt(12)
	s, err := store.Open(dir, crashOpts(inj))
	if err == nil {
		_, _ = crashIngest(t, s)
		s.Close()
	}

	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	e, dup, err := s2.PutBlob("redis", store.LabelNormal, "post-crash", mustBlob(t, 77))
	if err != nil || dup {
		t.Fatalf("push after recovery = %v, dup=%v", err, dup)
	}
	if _, err := s2.Get(e.ID); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryQuarantinesCorruptSegment flips one payload byte on disk and
// checks recovery refuses the segment: it lands in quarantine/, its
// records are dropped from the manifest, and a reopened store neither
// serves nor crashes on the damaged data.
func TestRecoveryQuarantinesCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.PutBlob("redis", store.LabelNormal, "0", mustBlob(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, "segment-000000.seg")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x40 // flip a bit inside the blob payload
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Fsck (read-only) sees the damage but must not touch anything.
	rep, err := store.Fsck(dir)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if rep.Clean() || len(rep.Quarantined) != 1 {
		t.Fatalf("fsck of corrupt store:\n%s", rep.Render())
	}
	if _, err := os.Stat(seg); err != nil {
		t.Fatalf("read-only fsck moved the segment: %v", err)
	}

	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("open with corrupt segment: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Lookup("redis", store.LabelNormal, "0"); ok {
		t.Fatal("corrupt blob still served after recovery")
	}
	rec := s2.Recovery()
	if rec.Clean() || len(rec.Quarantined) != 1 || rec.DroppedRecords != 1 {
		t.Fatalf("recovery report:\n%s", rec.Render())
	}
	qdes, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qdes) != 1 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(qdes), err)
	}

	// The quarantined segment stays out of the way: a second pass is clean.
	rep2, err := store.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		t.Fatalf("store not clean after quarantine:\n%s", rep2.Render())
	}
}

// TestRepairExitSemantics mirrors the CLI contract: Fsck reports, Repair
// fixes, and a repaired store comes back clean.
func TestRepairExitSemantics(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.PutBlob("w", store.LabelNormal, "0", mustBlob(t, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the manifest tail and drop temp debris, like a crash would.
	mf, err := os.OpenFile(filepath.Join(dir, "MANIFEST"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mf.WriteString("v2 torn-line-with"); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	if err := os.WriteFile(filepath.Join(dir, "segment-000009.seg.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := store.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.TruncatedBytes == 0 {
		t.Fatalf("fsck missed the torn tail:\n%s", rep.Render())
	}

	fixed, err := store.Repair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Clean() || len(fixed.Repaired) == 0 {
		t.Fatalf("repair did nothing:\n%s", fixed.Render())
	}

	rep2, err := store.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() || rep2.Records != 1 {
		t.Fatalf("store not clean after repair:\n%s", rep2.Render())
	}

	// Unrecoverable: the directory does not exist at all.
	if _, err := store.Fsck(filepath.Join(dir, "no-such-store")); err == nil {
		t.Fatal("fsck of a missing directory must fail")
	}
}

// TestManifestSyncErrorPath: when the manifest fsync fails the push is not
// acknowledged and both files are rolled back — a retry succeeds and a
// restart sees exactly the acknowledged state.
func TestManifestSyncErrorPath(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil)
	boom := errors.New("manifest sync: disk full")
	// Sync #1 seals the first segment's header at create time, #2 the
	// sketch log's; #3 is the first push's segment sync, #4 its manifest
	// sync.
	inj.FailNth(faultfs.OpSync, 4, boom)

	s, err := store.Open(dir, store.Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	blob := mustBlob(t, 9)
	if _, _, err := s.PutBlob("w", store.LabelNormal, "0", blob); !errors.Is(err, boom) {
		t.Fatalf("push with failing manifest sync = %v, want %v", err, boom)
	}
	if _, ok := s.Lookup("w", store.LabelNormal, "0"); ok {
		t.Fatal("unacked push is visible")
	}
	// The fault was transient: the same push must now go through cleanly.
	e, dup, err := s.PutBlob("w", store.LabelNormal, "0", blob)
	if err != nil || dup {
		t.Fatalf("retry = %v, dup=%v", err, dup)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Recovery().Clean() {
		t.Fatalf("rollback left debris:\n%s", s2.Recovery().Render())
	}
	got, ok := s2.Lookup("w", store.LabelNormal, "0")
	if !ok || got.ID != e.ID {
		t.Fatalf("after restart: %+v, %v", got, ok)
	}
	if _, err := s2.Get(e.ID); err != nil {
		t.Fatal(err)
	}
}

// TestRolloverErrorLeavesStoreUsable: a fault while creating the next
// segment must not leave temp files or a wedged store behind (the
// partial-segment-cleanup satellite).
func TestRolloverErrorLeavesStoreUsable(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil)
	boom := errors.New("segment header write failed")
	// Write #1 is the first segment's header, #2 the sketch log's; push #1
	// writes its blob frame (#3), manifest line (#4) and sketch frame
	// (#5); push #2 rolls over first, so the next segment's header write
	// is #6.
	inj.FailNth(faultfs.OpWrite, 6, boom)

	s, err := store.Open(dir, store.Options{FS: inj, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.PutBlob("w", store.LabelNormal, "0", mustBlob(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.PutBlob("w", store.LabelNormal, "1", mustBlob(t, 2)); !errors.Is(err, boom) {
		t.Fatalf("push during failed rollover = %v, want %v", err, boom)
	}
	for _, de := range mustReadDir(t, dir) {
		if strings.HasSuffix(de.Name(), ".tmp") {
			t.Fatalf("temp debris left behind: %s", de.Name())
		}
	}
	// The store retries the rollover on the next append.
	if _, _, err := s.PutBlob("w", store.LabelNormal, "1", mustBlob(t, 2)); err != nil {
		t.Fatalf("push after transient rollover failure: %v", err)
	}
	if _, ok := s.Lookup("w", store.LabelNormal, "1"); !ok {
		t.Fatal("recovered push missing")
	}
}

func mustReadDir(t *testing.T, dir string) []os.DirEntry {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return des
}

// TestOpenManifestEdgeCases: empty store, zero-length manifest, and a
// manifest holding duplicate records must all open cleanly.
func TestOpenManifestEdgeCases(t *testing.T) {
	t.Run("no-manifest", func(t *testing.T) {
		s, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if got := len(s.Workloads()); got != 0 {
			t.Fatalf("fresh store has %d workloads", got)
		}
		if !s.Recovery().Clean() {
			t.Fatalf("fresh store not clean:\n%s", s.Recovery().Render())
		}
	})

	t.Run("zero-length-manifest", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if got := len(s.Workloads()); got != 0 {
			t.Fatalf("zero-length manifest yields %d workloads", got)
		}
		if !s.Recovery().Clean() {
			t.Fatalf("zero-length manifest not clean:\n%s", s.Recovery().Render())
		}
	})

	t.Run("duplicate-records", func(t *testing.T) {
		dir := t.TempDir()
		s, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		e, _, err := s.PutBlob("w", store.LabelNormal, "0", mustBlob(t, 5))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Duplicate the record wholesale, as a replayed-twice log would.
		mpath := filepath.Join(dir, "MANIFEST")
		raw, err := os.ReadFile(mpath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mpath, append(raw, raw...), 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatalf("open with duplicate records: %v", err)
		}
		defer s2.Close()
		got, ok := s2.Lookup("w", store.LabelNormal, "0")
		if !ok || got.ID != e.ID {
			t.Fatalf("entry after duplicate replay: %+v, %v", got, ok)
		}
		if bl := s2.Baselines("w"); len(bl) != 1 {
			t.Fatalf("duplicate record inflated baselines: %d", len(bl))
		}
		if _, err := s2.Get(e.ID); err != nil {
			t.Fatal(err)
		}
	})
}
