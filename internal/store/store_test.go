package store_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
	"vprof/internal/store"
)

// testProfile builds a small but non-trivial profile whose content varies
// with seed, so distinct runs hash to distinct blobs.
func testProfile(seed int64) *sampler.Profile {
	p := &sampler.Profile{
		Pid:        int(seed%7) + 1,
		File:       "prog.vp",
		Interval:   97,
		TotalTicks: 10000 + seed,
		NumAlarms:  100 + seed%13,
		Hist:       make([]int64, 64),
		Layout: []sampler.LayoutEntry{
			{Func: "scan", Name: "n"},
			{Func: "#global", Name: "buf", IsPointer: true},
		},
	}
	for i := range p.Hist {
		p.Hist[i] = (seed*31 + int64(i)*7) % 5
	}
	for i := int64(0); i < 20; i++ {
		p.Samples = append(p.Samples, sampler.Sample{
			Layout: int32(i % 2), PC: int32(i % 64), Value: seed + i, Tick: 97 * i, Link: -1,
		})
	}
	return p
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	e, dup, err := s.Put("w1", store.LabelNormal, "0", testProfile(1))
	if err != nil || dup {
		t.Fatalf("Put: %v dup=%v", err, dup)
	}
	if e.ID == "" || e.Workload != "w1" || e.Run != "0" {
		t.Fatalf("entry = %+v", e)
	}
	p, err := s.Get(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalTicks != 10001 || len(p.Samples) != 20 {
		t.Fatalf("decoded profile = %+v", p)
	}
	// Same key + same content: dedup, nothing new written.
	_, dup, err = s.Put("w1", store.LabelNormal, "0", testProfile(1))
	if err != nil || !dup {
		t.Fatalf("re-Put: %v dup=%v", err, dup)
	}
	// Same content under a new run: new entry, blob shared.
	e2, dup, err := s.Put("w1", store.LabelNormal, "1", testProfile(1))
	if err != nil || dup {
		t.Fatalf("alias Put: %v dup=%v", err, dup)
	}
	if e2.ID != e.ID {
		t.Fatalf("content addressing broken: %s vs %s", e2.ID, e.ID)
	}
	if got := len(s.Baselines("w1")); got != 2 {
		t.Fatalf("baselines = %d, want 2", got)
	}
}

func TestRejectsCorruptBlob(t *testing.T) {
	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob, err := profilefmt.Marshal(testProfile(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.PutBlob("w", store.LabelCandidate, "0", blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	blob[10] ^= 0xff
	if _, _, err := s.PutBlob("w", store.LabelCandidate, "0", blob); err == nil {
		t.Fatal("corrupted blob accepted")
	}
	if _, _, err := s.PutBlob("", store.LabelCandidate, "0", blob); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestManifestReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		e, _, err := s.Put("redis", store.LabelNormal, fmt.Sprint(i), testProfile(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, e.ID)
	}
	if _, _, err := s.Put("redis", store.LabelCandidate, "0", testProfile(99)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the index must come back from the manifest alone.
	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	bl := s2.Baselines("redis")
	if len(bl) != 5 {
		t.Fatalf("baselines after reopen = %d, want 5", len(bl))
	}
	for i, e := range bl {
		if e.Run != fmt.Sprint(i) || e.ID != ids[i] {
			t.Fatalf("baseline %d = %+v, want run %d id %s", i, e, i, ids[i])
		}
		if _, err := s2.Get(e.ID); err != nil {
			t.Fatalf("Get(%s) after reopen: %v", e.ID, err)
		}
	}
	if got := len(s2.Candidates("redis")); got != 1 {
		t.Fatalf("candidates after reopen = %d", got)
	}
	// A torn trailing manifest line (crash mid-append) must not break open.
	mf, err := os.OpenFile(filepath.Join(dir, "MANIFEST"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mf.WriteString("v1 deadbeef 0 12"); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	s3, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("open with torn manifest: %v", err)
	}
	if got := len(s3.Baselines("redis")); got != 5 {
		t.Fatalf("baselines with torn manifest = %d", got)
	}
	s3.Close()
}

func TestRollingBaselineCorpus(t *testing.T) {
	s, err := store.Open(t.TempDir(), store.Options{BaselineCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 7; i++ {
		if _, _, err := s.Put("w", store.LabelNormal, fmt.Sprint(i), testProfile(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	bl := s.Baselines("w")
	if len(bl) != 3 {
		t.Fatalf("rolling corpus = %d entries, want 3", len(bl))
	}
	// Most recent three (runs 4,5,6), returned in run order.
	for i, want := range []string{"4", "5", "6"} {
		if bl[i].Run != want {
			t.Fatalf("corpus[%d].Run = %s, want %s", i, bl[i].Run, want)
		}
	}
	// Older runs are still stored (append-only), just out of the corpus.
	if e, ok := s.Lookup("w", store.LabelNormal, "0"); !ok {
		t.Fatal("evicted run lost")
	} else if _, err := s.Get(e.ID); err != nil {
		t.Fatal(err)
	}
}

func TestDecodedCache(t *testing.T) {
	s, err := store.Open(t.TempDir(), store.Options{CacheCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		e, _, err := s.Put("w", store.LabelNormal, fmt.Sprint(i), testProfile(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, e.ID)
	}
	base := s.CacheStats()
	if _, err := s.Get(ids[2]); err != nil { // still cached from Put
		t.Fatal(err)
	}
	st := s.CacheStats()
	if st.Hits != base.Hits+1 {
		t.Fatalf("expected a cache hit, stats %+v -> %+v", base, st)
	}
	if _, err := s.Get(ids[0]); err != nil { // evicted: cap 2, three puts
		t.Fatal(err)
	}
	st2 := s.CacheStats()
	if st2.Misses != st.Misses+1 {
		t.Fatalf("expected a cache miss, stats %+v -> %+v", st, st2)
	}
	if st2.Entries > 2 {
		t.Fatalf("cache over capacity: %+v", st2)
	}
}

func TestSegmentRollover(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := s.Put("w", store.LabelNormal, fmt.Sprint(i), testProfile(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "segment-*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("expected rollover to several segments, got %v (%v)", segs, err)
	}
	s2, err := store.Open(dir, store.Options{SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, e := range s2.Baselines("w") {
		if _, err := s2.Get(e.ID); err != nil {
			t.Fatalf("Get across segments: %v", err)
		}
	}
}

// TestConcurrentAccess hammers Put/Get/Baselines/Workloads from many
// goroutines; run under -race it is the satellite's concurrency check.
func TestConcurrentAccess(t *testing.T) {
	s, err := store.Open(t.TempDir(), store.Options{CacheCap: 8, BaselineCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers, readers, perWriter = 4, 4, 12
	var wg sync.WaitGroup
	errs := make(chan error, writers*perWriter+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wl := fmt.Sprintf("wl%d", w%2)
			for i := 0; i < perWriter; i++ {
				label := store.LabelNormal
				if i%3 == 0 {
					label = store.LabelCandidate
				}
				e, _, err := s.Put(wl, label, fmt.Sprintf("%d-%d", w, i), testProfile(int64(w*100+i)))
				if err != nil {
					errs <- err
					return
				}
				if _, err := s.Get(e.ID); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				for _, info := range s.Workloads() {
					for _, e := range s.Baselines(info.Workload) {
						if _, err := s.Get(e.ID); err != nil {
							errs <- err
							return
						}
					}
					s.Candidates(info.Workload)
				}
				s.CacheStats()
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := 0
	for _, info := range s.Workloads() {
		total += info.Normals + info.Candidates
	}
	if total != writers*perWriter {
		t.Fatalf("stored %d entries, want %d", total, writers*perWriter)
	}
}

// BenchmarkStoreIngest tracks ingestion throughput: validate + hash + append
// + index of a typical profile bundle.
func BenchmarkStoreIngest(b *testing.B) {
	s, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	blobs := make([][]byte, 64)
	for i := range blobs {
		blob, err := profilefmt.Marshal(testProfile(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		blobs[i] = blob
	}
	b.SetBytes(int64(len(blobs[0])))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.PutBlob("bench", store.LabelNormal, fmt.Sprint(i), blobs[i%len(blobs)]); err != nil {
			b.Fatal(err)
		}
	}
}
