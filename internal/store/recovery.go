package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vprof/internal/faultfs"
)

// FsckReport is the outcome of a recovery pass over a store directory —
// run implicitly by Open, or explicitly by Fsck / Repair / `vprof fsck`.
type FsckReport struct {
	Dir     string
	Records int // valid manifest records that survived
	// SketchRecords counts whole sketch frames surviving in sketches.log
	// (derived data: losses here rebuild from blobs, never drop entries).
	SketchRecords int

	// Issues lists every problem found; empty means the store was clean.
	Issues []string
	// Repaired lists the actions actually taken (only Repair/Open take
	// action; Fsck reports what it would do).
	Repaired []string
	// DroppedRecords counts manifest records discarded because their line
	// was corrupt, trailed a corrupt line, or referenced a bad segment.
	DroppedRecords int
	// Quarantined lists segment files that failed verification and were
	// (or would be) moved into quarantine/ instead of loaded.
	Quarantined []string
	// TruncatedBytes is the torn-tail debris trimmed from the manifest and
	// segments.
	TruncatedBytes int64
}

// Clean reports whether the pass found nothing wrong.
func (r *FsckReport) Clean() bool { return len(r.Issues) == 0 }

// Render formats the report for humans (the `vprof fsck` output).
func (r *FsckReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "store %s: %d record(s), %d sketch(es)", r.Dir, r.Records, r.SketchRecords)
	if r.Clean() {
		b.WriteString(", clean\n")
		return b.String()
	}
	fmt.Fprintf(&b, ", %d issue(s)\n", len(r.Issues))
	for _, is := range r.Issues {
		fmt.Fprintf(&b, "  issue: %s\n", is)
	}
	for _, q := range r.Quarantined {
		fmt.Fprintf(&b, "  quarantine: %s\n", q)
	}
	if r.DroppedRecords > 0 {
		fmt.Fprintf(&b, "  dropped records: %d\n", r.DroppedRecords)
	}
	if r.TruncatedBytes > 0 {
		fmt.Fprintf(&b, "  truncated bytes: %d\n", r.TruncatedBytes)
	}
	for _, rep := range r.Repaired {
		fmt.Fprintf(&b, "  repaired: %s\n", rep)
	}
	return b.String()
}

// Fsck checks a store directory without modifying it: the report lists the
// damage a Repair (or Open) would fix. The returned error means the store
// is unrecoverable — the directory or manifest cannot even be read.
func Fsck(dir string) (*FsckReport, error) {
	rep, _, err := recoverDir(faultfs.NewOS(), dir, recoverOpts{verify: true})
	return rep, err
}

// Repair checks a store directory and fixes what it finds: truncates torn
// tails, removes temp debris, quarantines corrupt segments, and rewrites
// the manifest without records that pointed into them.
func Repair(dir string) (*FsckReport, error) {
	rep, _, err := recoverDir(faultfs.NewOS(), dir, recoverOpts{apply: true, verify: true})
	return rep, err
}

// recoverOpts: apply=false is a dry run (Fsck); verify=false skips the
// per-blob checksum pass (structural checks still run).
type recoverOpts struct {
	apply  bool
	verify bool
}

// recoveredRecord is one manifest record that survived recovery.
type recoveredRecord struct {
	entry *Entry
	ref   blobRef
}

// recoverDir is the single recovery path shared by Open, Fsck and Repair:
//
//  1. remove stray *.tmp files (a crash mid segment-creation);
//  2. replay the manifest up to its first corrupt record and truncate the
//     rest — records are CRC-framed, so a torn or flipped line is caught;
//  3. verify every referenced segment: magic header, every referenced
//     frame in bounds with a matching size field (and, with verify, a
//     matching payload CRC32C). A segment that fails is quarantined and
//     its records dropped; a segment with bytes past its last referenced
//     frame (an append whose manifest record never landed) is truncated;
//  4. truncate unreferenced segments back to their header, or quarantine
//     them if even the header is bad;
//  5. if step 3 dropped records, rewrite the manifest (temp + rename) so
//     the next replay is clean.
//
// A non-nil error means unrecoverable: the directory, manifest or a
// segment could not even be read/moved, so no consistent state can be
// produced.
func recoverDir(fsys faultfs.FS, dir string, o recoverOpts) (*FsckReport, []recoveredRecord, error) {
	rep := &FsckReport{Dir: dir}
	if _, err := fsys.Stat(dir); err != nil {
		return rep, nil, fmt.Errorf("store: unrecoverable: %w", err)
	}

	des, err := fsys.ReadDir(dir)
	if err != nil {
		return rep, nil, fmt.Errorf("store: unrecoverable: %w", err)
	}
	onDisk := map[string]bool{} // segment files present in the directory
	for _, de := range des {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			rep.Issues = append(rep.Issues, fmt.Sprintf("stray temp file %s", name))
			if o.apply {
				if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
					return rep, nil, fmt.Errorf("store: unrecoverable: remove %s: %w", name, err)
				}
				rep.Repaired = append(rep.Repaired, fmt.Sprintf("removed %s", name))
			}
		case strings.HasPrefix(name, "segment-") && strings.HasSuffix(name, ".seg"):
			onDisk[name] = true
		}
	}

	records, err := replayManifest(fsys, dir, rep, o)
	if err != nil {
		return rep, nil, err
	}

	// The sketch log is derived data: recover it independently (truncate a
	// torn tail, quarantine on a bad header) without affecting any record.
	if err := recoverSketchLog(fsys, dir, rep, o); err != nil {
		return rep, nil, err
	}

	// Group surviving records by the segment they point into.
	bySeg := map[int][]recoveredRecord{}
	for _, rec := range records {
		bySeg[rec.ref.segment] = append(bySeg[rec.ref.segment], rec)
	}
	segIDs := make([]int, 0, len(bySeg))
	for id := range bySeg {
		segIDs = append(segIDs, id)
	}
	sort.Ints(segIDs)

	badSeg := map[int]bool{}
	for _, id := range segIDs {
		ok, err := checkSegment(fsys, dir, id, bySeg[id], rep, o)
		if err != nil {
			return rep, nil, err
		}
		if !ok {
			badSeg[id] = true
			rep.DroppedRecords += len(bySeg[id])
		}
		delete(onDisk, segmentName(id))
	}

	// Unreferenced segments: a fresh (or fully-unacked) segment is fine
	// once trimmed to its header; anything headerless is quarantined.
	var unref []string
	for name := range onDisk {
		unref = append(unref, name)
	}
	sort.Strings(unref)
	for _, name := range unref {
		if err := checkUnreferencedSegment(fsys, dir, name, rep, o); err != nil {
			return rep, nil, err
		}
	}

	// Drop records that pointed into quarantined/missing segments, and
	// persist that decision so the next replay does not resurrect them.
	if len(badSeg) > 0 {
		kept := records[:0]
		for _, rec := range records {
			if !badSeg[rec.ref.segment] {
				kept = append(kept, rec)
			}
		}
		records = kept
		if o.apply {
			if err := rewriteManifest(fsys, dir, records); err != nil {
				return rep, nil, fmt.Errorf("store: unrecoverable: rewrite manifest: %w", err)
			}
			rep.Repaired = append(rep.Repaired,
				fmt.Sprintf("rewrote manifest without %d dropped record(s)", rep.DroppedRecords))
		}
	}
	rep.Records = len(records)
	return rep, records, nil
}

// readFileVia reads a whole file through the faultfs seam (nil, nil when it
// does not exist).
func readFileVia(fsys faultfs.FS, path string) ([]byte, error) {
	fi, err := fsys.Stat(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, fi.Size())
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, fi.Size()), buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// replayManifest parses the manifest up to its first invalid record. Any
// bytes past that point — a torn final line after a crash, or a flipped
// record and everything behind it — are truncated away (when applying).
func replayManifest(fsys faultfs.FS, dir string, rep *FsckReport, o recoverOpts) ([]recoveredRecord, error) {
	path := filepath.Join(dir, "MANIFEST")
	data, err := readFileVia(fsys, path)
	if err != nil {
		return nil, fmt.Errorf("store: unrecoverable: read manifest: %w", err)
	}
	var records []recoveredRecord
	validLen := int64(0)
	rest := data
	for len(rest) > 0 {
		nl := -1
		for i, b := range rest {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // trailing fragment without newline: torn tail
		}
		line := string(rest[:nl+1])
		e, ref, perr := parseManifestLine(line)
		if perr != nil {
			break
		}
		records = append(records, recoveredRecord{entry: e, ref: ref})
		validLen += int64(nl + 1)
		rest = rest[nl+1:]
	}
	if validLen < int64(len(data)) {
		torn := int64(len(data)) - validLen
		// Complete lines beyond the corrupt one are records being dropped.
		for _, b := range data[validLen:] {
			if b == '\n' {
				rep.DroppedRecords++
			}
		}
		rep.TruncatedBytes += torn
		rep.Issues = append(rep.Issues,
			fmt.Sprintf("manifest: %d corrupt/torn byte(s) after %d valid record(s)", torn, len(records)))
		if o.apply {
			if err := fsys.Truncate(path, validLen); err != nil {
				return nil, fmt.Errorf("store: unrecoverable: truncate manifest: %w", err)
			}
			rep.Repaired = append(rep.Repaired, fmt.Sprintf("truncated manifest to %d bytes", validLen))
		}
	}
	return records, nil
}

// checkSegment verifies one referenced segment. Returns ok=false when the
// segment cannot be trusted (missing, bad header, frame mismatch, payload
// checksum failure) — the caller drops its records; the file itself is
// quarantined. A trustworthy segment with torn bytes past its last
// referenced frame is truncated back to that frame's end.
func checkSegment(fsys faultfs.FS, dir string, id int, recs []recoveredRecord, rep *FsckReport, o recoverOpts) (bool, error) {
	name := segmentName(id)
	path := filepath.Join(dir, name)
	fi, err := fsys.Stat(path)
	if errors.Is(err, os.ErrNotExist) {
		rep.Issues = append(rep.Issues, fmt.Sprintf("%s: missing (%d record(s) point into it)", name, len(recs)))
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: unrecoverable: stat %s: %w", name, err)
	}
	f, err := fsys.Open(path)
	if err != nil {
		return false, fmt.Errorf("store: unrecoverable: open %s: %w", name, err)
	}
	bad := func(format string, args ...any) (bool, error) {
		f.Close()
		rep.Issues = append(rep.Issues, fmt.Sprintf("%s: ", name)+fmt.Sprintf(format, args...))
		if err := quarantine(fsys, dir, name, rep, o); err != nil {
			return false, err
		}
		return false, nil
	}

	hdr := make([]byte, segHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return bad("unreadable header: %v", err)
	}
	if string(hdr[:4]) != segMagic || binary.LittleEndian.Uint32(hdr[4:]) != segVersion {
		return bad("bad header %q", hdr)
	}

	maxEnd := int64(segHeaderSize)
	for _, rec := range recs {
		end := rec.ref.offset + rec.ref.size
		if end > maxEnd {
			maxEnd = end
		}
		if rec.ref.offset < segHeaderSize+frameHeaderSize {
			return bad("record %s points into the header", rec.entry.ID[:8])
		}
		if end > fi.Size() {
			return bad("record %s reaches byte %d but the file has %d", rec.entry.ID[:8], end, fi.Size())
		}
		fh := make([]byte, frameHeaderSize)
		if _, err := f.ReadAt(fh, rec.ref.offset-frameHeaderSize); err != nil {
			return bad("unreadable frame header at %d: %v", rec.ref.offset-frameHeaderSize, err)
		}
		if got := int64(binary.LittleEndian.Uint32(fh[0:4])); got != rec.ref.size {
			return bad("frame at %d sized %d, manifest says %d", rec.ref.offset-frameHeaderSize, got, rec.ref.size)
		}
		if o.verify {
			payload := make([]byte, rec.ref.size)
			if _, err := f.ReadAt(payload, rec.ref.offset); err != nil {
				return bad("unreadable blob at %d: %v", rec.ref.offset, err)
			}
			if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(fh[4:8]); got != want {
				return bad("blob at %d fails CRC32C (%08x != %08x)", rec.ref.offset, got, want)
			}
		}
	}
	f.Close()

	if fi.Size() > maxEnd {
		torn := fi.Size() - maxEnd
		rep.TruncatedBytes += torn
		rep.Issues = append(rep.Issues,
			fmt.Sprintf("%s: %d unreferenced byte(s) past the last acked frame", name, torn))
		if o.apply {
			if err := fsys.Truncate(path, maxEnd); err != nil {
				return false, fmt.Errorf("store: unrecoverable: truncate %s: %w", name, err)
			}
			rep.Repaired = append(rep.Repaired, fmt.Sprintf("truncated %s to %d bytes", name, maxEnd))
		}
	}
	return true, nil
}

// checkUnreferencedSegment handles a segment file no manifest record points
// into: keep it if its header is sound (trimming unacked bytes), otherwise
// quarantine it.
func checkUnreferencedSegment(fsys faultfs.FS, dir, name string, rep *FsckReport, o recoverOpts) error {
	path := filepath.Join(dir, name)
	fi, err := fsys.Stat(path)
	if err != nil {
		return fmt.Errorf("store: unrecoverable: stat %s: %w", name, err)
	}
	headerOK := false
	if fi.Size() >= segHeaderSize {
		f, err := fsys.Open(path)
		if err != nil {
			return fmt.Errorf("store: unrecoverable: open %s: %w", name, err)
		}
		hdr := make([]byte, segHeaderSize)
		if _, rerr := f.ReadAt(hdr, 0); rerr == nil &&
			string(hdr[:4]) == segMagic && binary.LittleEndian.Uint32(hdr[4:]) == segVersion {
			headerOK = true
		}
		f.Close()
	}
	if !headerOK {
		rep.Issues = append(rep.Issues, fmt.Sprintf("%s: unreferenced with a bad header", name))
		return quarantine(fsys, dir, name, rep, o)
	}
	if fi.Size() > segHeaderSize {
		torn := fi.Size() - segHeaderSize
		rep.TruncatedBytes += torn
		rep.Issues = append(rep.Issues,
			fmt.Sprintf("%s: %d unacked byte(s) in an unreferenced segment", name, torn))
		if o.apply {
			if err := fsys.Truncate(path, segHeaderSize); err != nil {
				return fmt.Errorf("store: unrecoverable: truncate %s: %w", name, err)
			}
			rep.Repaired = append(rep.Repaired, fmt.Sprintf("truncated %s to its header", name))
		}
	}
	return nil
}

// quarantine moves a condemned segment into <dir>/quarantine/, picking a
// fresh name if a previous incarnation is already there.
func quarantine(fsys faultfs.FS, dir, name string, rep *FsckReport, o recoverOpts) error {
	rep.Quarantined = append(rep.Quarantined, name)
	if !o.apply {
		return nil
	}
	qdir := filepath.Join(dir, "quarantine")
	if err := fsys.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("store: unrecoverable: create quarantine dir: %w", err)
	}
	dst := filepath.Join(qdir, name)
	for i := 1; ; i++ {
		if _, err := fsys.Stat(dst); errors.Is(err, os.ErrNotExist) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", name, i))
	}
	if err := fsys.Rename(filepath.Join(dir, name), dst); err != nil {
		return fmt.Errorf("store: unrecoverable: quarantine %s: %w", name, err)
	}
	rep.Repaired = append(rep.Repaired, fmt.Sprintf("moved %s to %s", name, dst))
	return nil
}

// rewriteManifest persists the surviving records as a fresh manifest via
// temp-file + rename, so a crash mid-rewrite leaves the old file intact.
func rewriteManifest(fsys faultfs.FS, dir string, records []recoveredRecord) error {
	path := filepath.Join(dir, "MANIFEST")
	tmp := path + ".rewrite.tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	for _, rec := range records {
		if _, err := io.WriteString(f, formatManifestLine(rec.entry, rec.ref)); err != nil {
			f.Close()
			fsys.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.Rename(tmp, path)
}
