// Package store is the persistent profile store behind the continuous
// profiling service: a content-addressed, append-only segment log holding
// profilefmt bundles, with an in-memory index that is rebuilt from a
// manifest on open.
//
// Layout on disk (all files append-only):
//
//	<dir>/MANIFEST            — one line per entry: links (workload, label,
//	                            run) keys to a content hash + segment offset
//	<dir>/segment-000000.seg  — raw bundle blobs, concatenated
//	<dir>/segment-000001.seg  — next segment after rollover, …
//
// Blobs are keyed by their SHA-256: pushing the same profile twice stores
// one copy, and a re-read blob is verified against its hash before being
// decoded. Entries (the (workload, label, run) → hash links) are what the
// manifest accumulates; a duplicate entry is a no-op. The store also keeps
//   - a rolling baseline corpus per workload: the most recent BaselineCap
//     normal runs, what the diagnosis endpoint compares candidates against;
//   - a bounded cache of decoded profiles, so repeated diagnoses of the
//     same runs do not re-decode their histograms and value samples.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"vprof/internal/obs"
	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
)

// ErrInvalidProfile wraps every decode rejection at ingest, so API layers
// can map "the uploaded bundle is garbage" to a typed client error.
var ErrInvalidProfile = errors.New("store: invalid profile bundle")

// Label classifies an entry: part of the normal baseline corpus, or a
// candidate (suspected-buggy) run to diagnose against it.
type Label string

const (
	LabelNormal    Label = "normal"
	LabelCandidate Label = "candidate"
)

// ParseLabel validates a label string from an API boundary.
func ParseLabel(s string) (Label, error) {
	switch Label(s) {
	case LabelNormal, LabelCandidate:
		return Label(s), nil
	case "buggy": // accepted alias: the paper's name for the candidate side
		return LabelCandidate, nil
	}
	return "", fmt.Errorf("store: unknown label %q (want normal, candidate or buggy)", s)
}

// Entry is one (workload, label, run) key resolved to a stored blob.
type Entry struct {
	ID       string // content hash of the blob, hex
	Workload string
	Label    Label
	Run      string
	Size     int64
	// Seq is the manifest position; entries replay in Seq order.
	Seq int
}

// blobRef locates a blob inside a segment.
type blobRef struct {
	segment int
	offset  int64
	size    int64
}

// Options tunes a store.
type Options struct {
	// BaselineCap bounds the rolling baseline corpus per workload
	// (default 16 most recent normal runs).
	BaselineCap int
	// CacheCap bounds the decoded-profile cache (default 64 profiles).
	CacheCap int
	// SegmentSize triggers rollover to a new segment file once the
	// current one exceeds it (default 64 MiB).
	SegmentSize int64
	// Metrics, when non-nil, receives the store's instrumentation
	// (segments written, ingest bytes, dedup hits, decoded-cache
	// hits/misses). A nil registry costs nil-receiver no-ops.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.BaselineCap <= 0 {
		o.BaselineCap = 16
	}
	if o.CacheCap <= 0 {
		o.CacheCap = 64
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = 64 << 20
	}
	return o
}

// CacheStats reports decoded-cache effectiveness.
type CacheStats struct {
	Hits, Misses int64
	Entries      int
}

// Store is safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu       sync.RWMutex
	blobs    map[string]blobRef  // content hash → location
	entries  map[string]*Entry   // entry key (workload|label|run) → entry
	byWl     map[string][]*Entry // workload → entries in Seq order
	seq      int
	manifest *os.File
	segID    int
	seg      *os.File // current segment, append handle
	segSize  int64
	readers  map[int]*os.File // read handles per segment

	cache      map[string]*sampler.Profile
	cacheOrder []string // FIFO eviction
	cacheHits  int64
	cacheMiss  int64

	m storeMetrics
}

// storeMetrics holds the store's nil-safe instrumentation handles.
type storeMetrics struct {
	segments     *obs.Counter
	ingestBytes  *obs.Counter
	dedupHits    *obs.Counter
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	cacheEntries *obs.Gauge
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	if reg == nil {
		return storeMetrics{}
	}
	return storeMetrics{
		segments: reg.Counter("vprof_store_segments_written_total",
			"Segment files opened for append (including rollovers)."),
		ingestBytes: reg.Counter("vprof_store_ingest_bytes_total",
			"Bytes of profile bundles appended to segments."),
		dedupHits: reg.Counter("vprof_store_dedup_hits_total",
			"Ingests resolved without a write: identical content already stored."),
		cacheHits: reg.Counter("vprof_store_decode_cache_hits_total",
			"Profile reads served from the decoded-profile cache."),
		cacheMisses: reg.Counter("vprof_store_decode_cache_misses_total",
			"Profile reads that had to re-read and decode a blob."),
		cacheEntries: reg.Gauge("vprof_store_decoded_cache_entries",
			"Profiles currently held by the decoded-profile cache."),
	}
}

// Open creates or reopens a store rooted at dir, rebuilding the index by
// replaying the manifest.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		opts:    opts.withDefaults(),
		blobs:   map[string]blobRef{},
		entries: map[string]*Entry{},
		byWl:    map[string][]*Entry{},
		readers: map[int]*os.File{},
		cache:   map[string]*sampler.Profile{},
		m:       newStoreMetrics(opts.Metrics),
	}
	if err := s.replayManifest(); err != nil {
		return nil, err
	}
	mf, err := os.OpenFile(s.manifestPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.manifest = mf
	if err := s.openSegmentForAppend(); err != nil {
		mf.Close()
		return nil, err
	}
	return s, nil
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "MANIFEST") }

func (s *Store) segmentPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("segment-%06d.seg", id))
}

// replayManifest rebuilds the in-memory index. A torn final line (crash
// mid-append) is skipped; everything before it is intact because both files
// are append-only.
func (s *Store) replayManifest() error {
	f, err := os.Open(s.manifestPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		e, ref, err := parseManifestLine(line)
		if err != nil {
			// Torn or foreign trailing data: stop replaying, the
			// append offset continues after what we have.
			break
		}
		s.indexLocked(e, ref)
		if ref.segment > s.segID {
			s.segID = ref.segment
		}
	}
	return sc.Err()
}

func (s *Store) openSegmentForAppend() error {
	f, err := os.OpenFile(s.segmentPath(s.segID), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	s.seg, s.segSize = f, st.Size()
	s.m.segments.Inc()
	return nil
}

// manifest line: v1 <hash> <segment> <offset> <size> <workload> <label> <run>
// with workload/run query-escaped so they cannot smuggle separators.
func formatManifestLine(e *Entry, ref blobRef) string {
	return fmt.Sprintf("v1 %s %d %d %d %s %s %s\n",
		e.ID, ref.segment, ref.offset, ref.size,
		url.QueryEscape(e.Workload), e.Label, url.QueryEscape(e.Run))
}

func parseManifestLine(line string) (*Entry, blobRef, error) {
	fields := strings.Fields(line)
	if len(fields) != 8 || fields[0] != "v1" {
		return nil, blobRef{}, fmt.Errorf("store: bad manifest line %q", line)
	}
	var ref blobRef
	if _, err := fmt.Sscanf(fields[2]+" "+fields[3]+" "+fields[4], "%d %d %d",
		&ref.segment, &ref.offset, &ref.size); err != nil {
		return nil, blobRef{}, err
	}
	wl, err := url.QueryUnescape(fields[5])
	if err != nil {
		return nil, blobRef{}, err
	}
	label, err := ParseLabel(fields[6])
	if err != nil {
		return nil, blobRef{}, err
	}
	run, err := url.QueryUnescape(fields[7])
	if err != nil {
		return nil, blobRef{}, err
	}
	if ref.segment < 0 || ref.offset < 0 || ref.size <= 0 {
		return nil, blobRef{}, fmt.Errorf("store: bad blob ref in %q", line)
	}
	return &Entry{ID: fields[1], Workload: wl, Label: label, Run: run, Size: ref.size}, ref, nil
}

func entryKey(workload string, label Label, run string) string {
	return workload + "\x00" + string(label) + "\x00" + run
}

// indexLocked inserts an entry into the in-memory index (mu held, or during
// single-threaded replay).
func (s *Store) indexLocked(e *Entry, ref blobRef) {
	if _, ok := s.blobs[e.ID]; !ok {
		s.blobs[e.ID] = ref
	}
	key := entryKey(e.Workload, e.Label, e.Run)
	if old, ok := s.entries[key]; ok {
		// Re-push of an existing run: latest content wins.
		old.ID, old.Size = e.ID, e.Size
		return
	}
	e.Seq = s.seq
	s.seq++
	s.entries[key] = e
	s.byWl[e.Workload] = append(s.byWl[e.Workload], e)
}

// PutBlob validates, stores and indexes one encoded profile bundle.
// The returned bool is true when an identical entry (same key, same
// content) already existed and nothing was written.
func (s *Store) PutBlob(workload string, label Label, run string, blob []byte) (*Entry, bool, error) {
	if workload == "" || run == "" {
		return nil, false, fmt.Errorf("store: workload and run are required")
	}
	p, err := profilefmt.Unmarshal(blob)
	if err != nil {
		return nil, false, fmt.Errorf("store: reject invalid profile: %w (%w)", err, ErrInvalidProfile)
	}
	sum := sha256.Sum256(blob)
	id := hex.EncodeToString(sum[:])

	s.mu.Lock()
	defer s.mu.Unlock()
	key := entryKey(workload, label, run)
	if old, ok := s.entries[key]; ok && old.ID == id {
		s.m.dedupHits.Inc()
		cp := *old
		return &cp, true, nil
	}
	ref, ok := s.blobs[id]
	if !ok {
		ref, err = s.appendBlobLocked(blob)
		if err != nil {
			return nil, false, err
		}
		s.m.ingestBytes.Add(float64(len(blob)))
	} else {
		s.m.dedupHits.Inc()
	}
	e := &Entry{ID: id, Workload: workload, Label: label, Run: run, Size: int64(len(blob))}
	if _, err := s.manifest.WriteString(formatManifestLine(e, ref)); err != nil {
		return nil, false, err
	}
	s.indexLocked(e, ref)
	s.cacheAddLocked(id, p)
	cp := *s.entries[key]
	return &cp, false, nil
}

// Put encodes and stores a profile (convenience over PutBlob).
func (s *Store) Put(workload string, label Label, run string, p *sampler.Profile) (*Entry, bool, error) {
	blob, err := profilefmt.Marshal(p)
	if err != nil {
		return nil, false, err
	}
	return s.PutBlob(workload, label, run, blob)
}

func (s *Store) appendBlobLocked(blob []byte) (blobRef, error) {
	if s.segSize >= s.opts.SegmentSize {
		if err := s.seg.Close(); err != nil {
			return blobRef{}, err
		}
		s.segID++
		if err := s.openSegmentForAppend(); err != nil {
			return blobRef{}, err
		}
	}
	ref := blobRef{segment: s.segID, offset: s.segSize, size: int64(len(blob))}
	n, err := s.seg.Write(blob)
	s.segSize += int64(n)
	if err != nil {
		return blobRef{}, err
	}
	return ref, nil
}

// Get returns the decoded profile stored under id, via the decoded cache.
func (s *Store) Get(id string) (*sampler.Profile, error) {
	s.mu.Lock()
	if p, ok := s.cache[id]; ok {
		s.cacheHits++
		s.mu.Unlock()
		s.m.cacheHits.Inc()
		return p, nil
	}
	s.cacheMiss++
	s.m.cacheMisses.Inc()
	ref, ok := s.blobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: no blob %s", id)
	}
	r, err := s.readerLocked(ref.segment)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}

	blob := make([]byte, ref.size)
	if _, err := r.ReadAt(blob, ref.offset); err != nil {
		return nil, fmt.Errorf("store: read blob %s: %w", id, err)
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != id {
		return nil, fmt.Errorf("store: blob %s failed content verification", id)
	}
	p, err := profilefmt.Unmarshal(blob)
	if err != nil {
		return nil, fmt.Errorf("store: decode blob %s: %w", id, err)
	}
	s.mu.Lock()
	s.cacheAddLocked(id, p)
	s.mu.Unlock()
	return p, nil
}

// readerLocked returns a shared read handle for a segment; *os.File.ReadAt
// is safe for concurrent readers.
func (s *Store) readerLocked(segment int) (*os.File, error) {
	if r, ok := s.readers[segment]; ok {
		return r, nil
	}
	r, err := os.Open(s.segmentPath(segment))
	if err != nil {
		return nil, err
	}
	s.readers[segment] = r
	return r, nil
}

func (s *Store) cacheAddLocked(id string, p *sampler.Profile) {
	if _, ok := s.cache[id]; ok {
		return
	}
	for len(s.cache) >= s.opts.CacheCap && len(s.cacheOrder) > 0 {
		evict := s.cacheOrder[0]
		s.cacheOrder = s.cacheOrder[1:]
		delete(s.cache, evict)
	}
	s.cache[id] = p
	s.cacheOrder = append(s.cacheOrder, id)
	s.m.cacheEntries.Set(float64(len(s.cache)))
}

// Lookup returns the entry stored under a (workload, label, run) key.
func (s *Store) Lookup(workload string, label Label, run string) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[entryKey(workload, label, run)]
	if !ok {
		return nil, false
	}
	cp := *e
	return &cp, true
}

// runLess orders run ids naturally for the common numeric case (shorter
// strings first, then lexicographic), matching the bug registry's ID order.
func runLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

func (s *Store) labeled(workload string, label Label) []*Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Entry
	for _, e := range s.byWl[workload] {
		if e.Label == label {
			cp := *e
			out = append(out, &cp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Run != out[j].Run {
			return runLess(out[i].Run, out[j].Run)
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Baselines returns the workload's rolling baseline corpus: its most recent
// BaselineCap normal entries, in run order.
func (s *Store) Baselines(workload string) []*Entry {
	out := s.labeled(workload, LabelNormal)
	if len(out) > s.opts.BaselineCap {
		// Most recent = highest Seq; keep those, restore run order.
		sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
		out = out[:s.opts.BaselineCap]
		sort.Slice(out, func(i, j int) bool {
			if out[i].Run != out[j].Run {
				return runLess(out[i].Run, out[j].Run)
			}
			return out[i].Seq < out[j].Seq
		})
	}
	return out
}

// Candidates returns the workload's candidate entries, in run order.
func (s *Store) Candidates(workload string) []*Entry {
	return s.labeled(workload, LabelCandidate)
}

// WorkloadInfo summarizes one workload's holdings.
type WorkloadInfo struct {
	Workload   string `json:"workload"`
	Normals    int    `json:"normals"`
	Candidates int    `json:"candidates"`
	Baselines  int    `json:"baselines"`
}

// Workloads lists every workload with stored entries, sorted by name.
func (s *Store) Workloads() []WorkloadInfo {
	s.mu.RLock()
	names := make([]string, 0, len(s.byWl))
	for wl := range s.byWl {
		names = append(names, wl)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]WorkloadInfo, 0, len(names))
	for _, wl := range names {
		info := WorkloadInfo{Workload: wl}
		info.Normals = len(s.labeled(wl, LabelNormal))
		info.Candidates = len(s.labeled(wl, LabelCandidate))
		b := len(s.Baselines(wl))
		info.Baselines = b
		out = append(out, info)
	}
	return out
}

// CacheStats reports decoded-cache hit/miss counters.
func (s *Store) CacheStats() CacheStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return CacheStats{Hits: s.cacheHits, Misses: s.cacheMiss, Entries: len(s.cache)}
}

// Health verifies the store is writable: both append handles are open, the
// manifest syncs, and the directory is still present. It is the substance
// behind the service's /healthz check.
func (s *Store) Health() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.manifest == nil || s.seg == nil {
		return errors.New("store: closed")
	}
	if err := s.manifest.Sync(); err != nil {
		return fmt.Errorf("store: manifest not writable: %w", err)
	}
	if _, err := os.Stat(s.dir); err != nil {
		return fmt.Errorf("store: directory missing: %w", err)
	}
	return nil
}

// Close releases file handles. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.manifest != nil {
		keep(s.manifest.Close())
		s.manifest = nil
	}
	if s.seg != nil {
		keep(s.seg.Close())
		s.seg = nil
	}
	for _, r := range s.readers {
		keep(r.Close())
	}
	s.readers = map[int]*os.File{}
	return first
}
