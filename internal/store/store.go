// Package store is the persistent profile store behind the continuous
// profiling service: a content-addressed, append-only segment log holding
// profilefmt bundles, with an in-memory index that is rebuilt from a
// manifest on open.
//
// Layout on disk:
//
//	<dir>/MANIFEST            — one CRC32C-framed record per line: links a
//	                            (workload, label, run) key to a content hash
//	                            + segment offset
//	<dir>/segment-000000.seg  — 8-byte header, then framed bundle blobs
//	<dir>/segment-000001.seg  — next segment after rollover, …
//	<dir>/quarantine/         — segments recovery refused to trust
//
// Blobs are keyed by their SHA-256: pushing the same profile twice stores
// one copy, and a re-read blob is verified against its hash before being
// decoded. Entries (the (workload, label, run) → hash links) are what the
// manifest accumulates; a duplicate entry is a no-op.
//
// Crash safety. Every append follows the same discipline: the blob frame is
// written and fsynced to its segment, then the manifest record is written
// and fsynced, and only then is the push acknowledged. A crash at any point
// therefore loses at most unacknowledged work: recovery (run inside Open,
// or explicitly via Fsck/Repair) replays the manifest, stops at the first
// record that fails its CRC, truncates the torn tail of both the manifest
// and the active segment, and quarantines — never loads — any segment whose
// framed blobs fail their checksums. New segment files are born via
// temp-file + rename so a half-created segment can never be mistaken for a
// real one. All file operations go through a faultfs.FS, so the
// crash-replay test matrix can cut the power at every single write.
//
// The store also keeps
//   - a rolling baseline corpus per workload: the most recent BaselineCap
//     normal runs, what the diagnosis endpoint compares candidates against;
//   - a bounded cache of decoded profiles, so repeated diagnoses of the
//     same runs do not re-decode their histograms and value samples.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"vprof/internal/faultfs"
	"vprof/internal/obs"
	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
	"vprof/internal/sketch"
)

// ErrInvalidProfile wraps every decode rejection at ingest, so API layers
// can map "the uploaded bundle is garbage" to a typed client error.
var ErrInvalidProfile = errors.New("store: invalid profile bundle")

// ErrUnavailable marks a backend that is temporarily unable to serve the
// request — a cluster write that missed its quorum, or every replica of a
// shard unreachable. API layers map it to 503 with a Retry-After so
// idempotent clients retry instead of surfacing a hard failure.
var ErrUnavailable = errors.New("store: backend unavailable")

// castagnoli is the CRC32C table shared by manifest records and blob frames.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	// segHeaderSize bytes open every segment file: the magic "VSEG" plus a
	// little-endian format version.
	segHeaderSize = 8
	segMagic      = "VSEG"
	segVersion    = 1
	// frameHeaderSize bytes precede every blob in a segment: payload size
	// and CRC32C, both little-endian uint32.
	frameHeaderSize = 8
)

// Label classifies an entry: part of the normal baseline corpus, or a
// candidate (suspected-buggy) run to diagnose against it.
type Label string

const (
	LabelNormal    Label = "normal"
	LabelCandidate Label = "candidate"
)

// ParseLabel validates a label string from an API boundary.
func ParseLabel(s string) (Label, error) {
	switch Label(s) {
	case LabelNormal, LabelCandidate:
		return Label(s), nil
	case "buggy": // accepted alias: the paper's name for the candidate side
		return LabelCandidate, nil
	}
	return "", fmt.Errorf("store: unknown label %q (want normal, candidate or buggy)", s)
}

// Entry is one (workload, label, run) key resolved to a stored blob.
type Entry struct {
	ID       string // content hash of the blob, hex
	Workload string
	Label    Label
	Run      string
	Size     int64
	// Seq is the manifest position; entries replay in Seq order.
	Seq int
}

// blobRef locates a blob inside a segment.
type blobRef struct {
	segment int
	offset  int64
	size    int64
}

// Options tunes a store.
type Options struct {
	// BaselineCap bounds the rolling baseline corpus per workload
	// (default 16 most recent normal runs).
	BaselineCap int
	// CacheCap bounds the decoded-profile cache (default 64 profiles).
	CacheCap int
	// SegmentSize triggers rollover to a new segment file once the
	// current one exceeds it (default 64 MiB).
	SegmentSize int64
	// FS is the filesystem the store persists through (default: the real
	// one). The crash-replay tests substitute a faultfs.Injector.
	FS faultfs.FS
	// NoSync skips the per-append fsyncs. Acknowledged pushes are then no
	// longer crash-durable; only benchmarks should set this.
	NoSync bool
	// SkipOpenVerify skips the blob checksum pass during Open's recovery
	// (structural checks — torn tails, frame sizes — still run). Get still
	// verifies every blob's SHA-256 on read.
	SkipOpenVerify bool
	// Metrics, when non-nil, receives the store's instrumentation
	// (segments written, ingest bytes, dedup hits, decoded-cache
	// hits/misses, recovery counters). A nil registry costs nil-receiver
	// no-ops.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.BaselineCap <= 0 {
		o.BaselineCap = 16
	}
	if o.CacheCap <= 0 {
		o.CacheCap = 64
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = 64 << 20
	}
	if o.FS == nil {
		o.FS = faultfs.NewOS()
	}
	return o
}

// CacheStats reports decoded-cache effectiveness.
type CacheStats struct {
	Hits, Misses int64
	Entries      int
}

// Store is safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	fsys faultfs.FS

	mu           sync.RWMutex
	blobs        map[string]blobRef  // content hash → location
	entries      map[string]*Entry   // entry key (workload|label|run) → entry
	byWl         map[string][]*Entry // workload → entries in Seq order
	seq          int
	manifest     faultfs.File
	manifestSize int64
	segID        int
	seg          faultfs.File // current segment, append handle
	segSize      int64
	readers      map[int]faultfs.File // read handles per segment
	broken       error                // sticky: set when a failed rollback leaves disk state untracked

	recovery *FsckReport // what Open's recovery found and fixed

	cache      map[string]*sampler.Profile
	cacheOrder []string // FIFO eviction
	cacheHits  int64
	cacheMiss  int64

	// Sketch log state (sketches.go): per-blob variable sketches the
	// incremental diagnosis path reads instead of the raw blobs.
	sketchLog        faultfs.File
	sketchLogSize    int64
	sketchIdx        map[string]sketchRef
	sketchCache      map[string]*sketch.Profile
	sketchCacheOrder []string
	sketchHits       int64
	sketchMiss       int64
	sketchRebuilt    int64

	m storeMetrics
}

// storeMetrics holds the store's nil-safe instrumentation handles.
type storeMetrics struct {
	segments       *obs.Counter
	ingestBytes    *obs.Counter
	dedupHits      *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEntries   *obs.Gauge
	quarantined    *obs.Counter
	recoveredDrops *obs.Counter
	recoveredBytes *obs.Counter
	sketchWrites   *obs.Counter
	sketchHits     *obs.Counter
	sketchMisses   *obs.Counter
	sketchRebuilds *obs.Counter
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	if reg == nil {
		return storeMetrics{}
	}
	return storeMetrics{
		segments: reg.Counter("vprof_store_segments_written_total",
			"Segment files opened for append (including rollovers)."),
		ingestBytes: reg.Counter("vprof_store_ingest_bytes_total",
			"Bytes of profile bundles appended to segments."),
		dedupHits: reg.Counter("vprof_store_dedup_hits_total",
			"Ingests resolved without a write: identical content already stored."),
		cacheHits: reg.Counter("vprof_store_decode_cache_hits_total",
			"Profile reads served from the decoded-profile cache."),
		cacheMisses: reg.Counter("vprof_store_decode_cache_misses_total",
			"Profile reads that had to re-read and decode a blob."),
		cacheEntries: reg.Gauge("vprof_store_decoded_cache_entries",
			"Profiles currently held by the decoded-profile cache."),
		quarantined: reg.Counter("vprof_store_quarantined_segments_total",
			"Segment files recovery moved to quarantine/ instead of loading."),
		recoveredDrops: reg.Counter("vprof_store_recovery_dropped_records_total",
			"Manifest records dropped during recovery (torn tail or quarantined segment)."),
		recoveredBytes: reg.Counter("vprof_store_recovery_truncated_bytes_total",
			"Torn bytes trimmed from the manifest and segments during recovery."),
		sketchWrites: reg.Counter("vprof_store_sketch_writes_total",
			"Sketch frames appended to the sketch log."),
		sketchHits: reg.Counter("vprof_store_sketch_cache_hits_total",
			"Sketch reads served from the in-memory sketch cache."),
		sketchMisses: reg.Counter("vprof_store_sketch_cache_misses_total",
			"Sketch reads that had to hit the sketch log or rebuild."),
		sketchRebuilds: reg.Counter("vprof_store_sketch_rebuilds_total",
			"Sketches rebuilt from raw blobs (stores predating the sketch log)."),
	}
}

// Open creates or reopens a store rooted at dir. Recovery runs first: the
// manifest is replayed up to its first corrupt record, torn tails are
// truncated, and corrupt segments are quarantined rather than loaded — an
// unclean shutdown never prevents opening. What recovery found is available
// via Recovery.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	rep, records, err := recoverDir(fsys, dir, recoverOpts{apply: true, verify: !opts.SkipOpenVerify})
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:         dir,
		opts:        opts,
		fsys:        fsys,
		blobs:       map[string]blobRef{},
		entries:     map[string]*Entry{},
		byWl:        map[string][]*Entry{},
		readers:     map[int]faultfs.File{},
		cache:       map[string]*sampler.Profile{},
		sketchCache: map[string]*sketch.Profile{},
		recovery:    rep,
		m:           newStoreMetrics(opts.Metrics),
	}
	s.m.quarantined.Add(float64(len(rep.Quarantined)))
	s.m.recoveredDrops.Add(float64(rep.DroppedRecords))
	s.m.recoveredBytes.Add(float64(rep.TruncatedBytes))
	for _, rec := range records {
		s.indexLocked(rec.entry, rec.ref)
		if rec.ref.segment > s.segID {
			s.segID = rec.ref.segment
		}
	}
	if onDisk := maxSegmentID(fsys, dir); onDisk > s.segID {
		s.segID = onDisk
	}
	mf, err := fsys.OpenFile(s.manifestPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if fi, err := mf.Stat(); err == nil {
		s.manifestSize = fi.Size()
	}
	s.manifest = mf
	seg, size, err := s.openSegment(s.segID)
	if err != nil {
		mf.Close()
		return nil, err
	}
	s.seg, s.segSize = seg, size
	s.m.segments.Inc()
	if err := s.openSketchLog(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Recovery reports what Open's recovery pass found and repaired. A cleanly
// shut down store yields a clean report.
func (s *Store) Recovery() *FsckReport { return s.recovery }

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "MANIFEST") }

func (s *Store) segmentPath(id int) string { return filepath.Join(s.dir, segmentName(id)) }

func segmentName(id int) string { return fmt.Sprintf("segment-%06d.seg", id) }

// segmentHeader is the 8 bytes opening every segment file.
func segmentHeader() []byte {
	h := make([]byte, segHeaderSize)
	copy(h, segMagic)
	binary.LittleEndian.PutUint32(h[4:], segVersion)
	return h
}

// maxSegmentID scans dir for the highest-numbered segment file, so a
// rollover that crashed between creating the file and referencing it does
// not get overwritten by a lower-numbered append.
func maxSegmentID(fsys faultfs.FS, dir string) int {
	max := 0
	des, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, de := range des {
		var id int
		if _, err := fmt.Sscanf(de.Name(), "segment-%06d.seg", &id); err == nil &&
			de.Name() == segmentName(id) && id > max {
			max = id
		}
	}
	return max
}

// openSegment opens segment id for append, creating it if necessary, and
// returns the handle plus its current size.
func (s *Store) openSegment(id int) (faultfs.File, int64, error) {
	path := s.segmentPath(id)
	if _, err := s.fsys.Stat(path); err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			return nil, 0, err
		}
		if err := s.createSegment(path); err != nil {
			return nil, 0, err
		}
	}
	f, err := s.fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}

// createSegment births a segment file via temp-file + rename: the header is
// written and fsynced under a .tmp name first, so a crash can never leave a
// half-created file that looks like a segment.
func (s *Store) createSegment(path string) (err error) {
	tmp := path + ".tmp"
	defer func() {
		if err != nil {
			s.fsys.Remove(tmp) // best effort: do not leave temp debris
		}
	}()
	f, err := s.fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(segmentHeader()); err != nil {
		f.Close()
		return err
	}
	if err = f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return s.fsys.Rename(tmp, path)
}

// Manifest record (one line):
//
//	v2 <hash> <segment> <offset> <size> <workload> <label> <run> <crc32c>
//
// workload/run are query-escaped so they cannot smuggle separators, and the
// trailing CRC32C (of everything before it) frames the record: a torn or
// bit-flipped line fails its checksum and recovery stops there.
func formatManifestLine(e *Entry, ref blobRef) string {
	payload := fmt.Sprintf("v2 %s %d %d %d %s %s %s",
		e.ID, ref.segment, ref.offset, ref.size,
		url.QueryEscape(e.Workload), e.Label, url.QueryEscape(e.Run))
	return fmt.Sprintf("%s %08x\n", payload, crc32.Checksum([]byte(payload), castagnoli))
}

func parseManifestLine(line string) (*Entry, blobRef, error) {
	line = strings.TrimSuffix(line, "\n")
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return nil, blobRef{}, fmt.Errorf("store: unframed manifest record %q", line)
	}
	payload, crcHex := line[:i], line[i+1:]
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil || len(crcHex) != 8 {
		return nil, blobRef{}, fmt.Errorf("store: bad manifest record checksum field %q", crcHex)
	}
	if got := crc32.Checksum([]byte(payload), castagnoli); got != uint32(want) {
		return nil, blobRef{}, fmt.Errorf("store: manifest record checksum mismatch (%08x != %08x)", got, want)
	}
	fields := strings.Fields(payload)
	if len(fields) != 8 || fields[0] != "v2" {
		return nil, blobRef{}, fmt.Errorf("store: bad manifest record %q", line)
	}
	var ref blobRef
	if _, err := fmt.Sscanf(fields[2]+" "+fields[3]+" "+fields[4], "%d %d %d",
		&ref.segment, &ref.offset, &ref.size); err != nil {
		return nil, blobRef{}, err
	}
	wl, err := url.QueryUnescape(fields[5])
	if err != nil {
		return nil, blobRef{}, err
	}
	label, err := ParseLabel(fields[6])
	if err != nil {
		return nil, blobRef{}, err
	}
	run, err := url.QueryUnescape(fields[7])
	if err != nil {
		return nil, blobRef{}, err
	}
	if ref.segment < 0 || ref.offset < frameHeaderSize || ref.size <= 0 {
		return nil, blobRef{}, fmt.Errorf("store: bad blob ref in %q", line)
	}
	return &Entry{ID: fields[1], Workload: wl, Label: label, Run: run, Size: ref.size}, ref, nil
}

func entryKey(workload string, label Label, run string) string {
	return workload + "\x00" + string(label) + "\x00" + run
}

// indexLocked inserts an entry into the in-memory index (mu held, or during
// single-threaded replay).
func (s *Store) indexLocked(e *Entry, ref blobRef) {
	if _, ok := s.blobs[e.ID]; !ok {
		s.blobs[e.ID] = ref
	}
	key := entryKey(e.Workload, e.Label, e.Run)
	if old, ok := s.entries[key]; ok {
		// Re-push of an existing run: latest content wins.
		old.ID, old.Size = e.ID, e.Size
		return
	}
	e.Seq = s.seq
	s.seq++
	s.entries[key] = e
	s.byWl[e.Workload] = append(s.byWl[e.Workload], e)
}

// PutBlob validates, stores and indexes one encoded profile bundle. It
// returns only after the blob and its manifest record are fsynced — an
// acknowledged push survives a crash. The returned bool is true when an
// identical entry (same key, same content) already existed and nothing was
// written.
func (s *Store) PutBlob(workload string, label Label, run string, blob []byte) (*Entry, bool, error) {
	if workload == "" || run == "" {
		return nil, false, fmt.Errorf("store: workload and run are required")
	}
	p, err := profilefmt.Unmarshal(blob)
	if err != nil {
		return nil, false, fmt.Errorf("store: reject invalid profile: %w (%w)", err, ErrInvalidProfile)
	}
	sum := sha256.Sum256(blob)
	id := hex.EncodeToString(sum[:])

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return nil, false, fmt.Errorf("store: refusing writes after unrecoverable rollback failure: %w", s.broken)
	}
	key := entryKey(workload, label, run)
	if old, ok := s.entries[key]; ok && old.ID == id {
		s.m.dedupHits.Inc()
		cp := *old
		return &cp, true, nil
	}
	ref, ok := s.blobs[id]
	fresh := false
	if !ok {
		ref, err = s.appendBlobLocked(blob)
		if err != nil {
			return nil, false, err
		}
		fresh = true
		s.m.ingestBytes.Add(float64(len(blob)))
	} else {
		s.m.dedupHits.Inc()
	}
	e := &Entry{ID: id, Workload: workload, Label: label, Run: run, Size: int64(len(blob))}
	if err := s.appendManifestLocked(e, ref, fresh); err != nil {
		return nil, false, err
	}
	s.indexLocked(e, ref)
	s.cacheAddLocked(id, p)
	// Fold and persist the blob's sketch so incremental diagnoses never
	// re-decode it. Sketches are derived data: an append failure is
	// absorbed (GetSketch rebuilds on demand), never failing an
	// acknowledged push.
	_ = s.appendSketchLocked(id, p)
	cp := *s.entries[key]
	return &cp, false, nil
}

// appendManifestLocked writes and fsyncs one manifest record. On any
// failure the partial record — and, when the blob was freshly appended for
// this push, the blob frame itself — is rolled back, so an error leaves the
// files byte-identical to before the call.
func (s *Store) appendManifestLocked(e *Entry, ref blobRef, freshBlob bool) error {
	rollback := func() {
		s.truncateManifestLocked(s.manifestSize)
		if freshBlob {
			s.truncateSegmentLocked(ref.offset - frameHeaderSize)
			delete(s.blobs, e.ID)
		}
	}
	line := formatManifestLine(e, ref)
	if n, err := io.WriteString(s.manifest, line); err != nil || n != len(line) {
		rollback()
		if err == nil {
			err = io.ErrShortWrite
		}
		return fmt.Errorf("store: append manifest record: %w", err)
	}
	if !s.opts.NoSync {
		if err := s.manifest.Sync(); err != nil {
			rollback()
			return fmt.Errorf("store: sync manifest: %w", err)
		}
	}
	s.manifestSize += int64(len(line))
	return nil
}

// truncateManifestLocked rolls the manifest back to size; if even that
// fails the in-memory offset no longer matches the file and the store
// refuses further writes rather than corrupt silently.
func (s *Store) truncateManifestLocked(size int64) {
	if err := s.manifest.Truncate(size); err != nil && s.broken == nil {
		s.broken = fmt.Errorf("manifest rollback to %d: %w", size, err)
	}
}

func (s *Store) truncateSegmentLocked(size int64) {
	if err := s.seg.Truncate(size); err != nil {
		if s.broken == nil {
			s.broken = fmt.Errorf("segment rollback to %d: %w", size, err)
		}
		return
	}
	s.segSize = size
}

// Put encodes and stores a profile (convenience over PutBlob).
func (s *Store) Put(workload string, label Label, run string, p *sampler.Profile) (*Entry, bool, error) {
	blob, err := profilefmt.Marshal(p)
	if err != nil {
		return nil, false, err
	}
	return s.PutBlob(workload, label, run, blob)
}

// appendBlobLocked frames a blob (size + CRC32C header) onto the active
// segment and fsyncs it before the manifest may reference it. Every error
// path truncates the partial frame away, so a failed append leaves no
// garbage behind.
func (s *Store) appendBlobLocked(blob []byte) (blobRef, error) {
	if s.segSize >= s.opts.SegmentSize {
		if err := s.rolloverLocked(); err != nil {
			return blobRef{}, err
		}
	}
	frame := make([]byte, frameHeaderSize+len(blob))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(blob)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(blob, castagnoli))
	copy(frame[frameHeaderSize:], blob)
	start := s.segSize
	if n, err := s.seg.Write(frame); err != nil || n != len(frame) {
		s.truncateSegmentLocked(start)
		if err == nil {
			err = io.ErrShortWrite
		}
		return blobRef{}, fmt.Errorf("store: append blob: %w", err)
	}
	if !s.opts.NoSync {
		if err := s.seg.Sync(); err != nil {
			s.truncateSegmentLocked(start)
			return blobRef{}, fmt.Errorf("store: sync segment: %w", err)
		}
	}
	s.segSize = start + int64(len(frame))
	return blobRef{segment: s.segID, offset: start + frameHeaderSize, size: int64(len(blob))}, nil
}

// rolloverLocked seals the active segment and starts the next one. The
// next segment is created and opened before the old one is released, so a
// failure at any step leaves the old segment active and the store
// consistent — the rollover simply retries on the next append.
func (s *Store) rolloverLocked() error {
	next, size, err := s.openSegment(s.segID + 1)
	if err != nil {
		return fmt.Errorf("store: rollover: %w", err)
	}
	if err := s.seg.Sync(); err != nil {
		next.Close()
		return fmt.Errorf("store: rollover: seal segment: %w", err)
	}
	if err := s.seg.Close(); err != nil {
		next.Close()
		// The old handle is gone either way; without a usable append
		// handle the store cannot safely continue.
		if s.broken == nil {
			s.broken = fmt.Errorf("close sealed segment: %w", err)
		}
		return fmt.Errorf("store: rollover: %w", err)
	}
	s.segID++
	s.seg, s.segSize = next, size
	s.m.segments.Inc()
	return nil
}

// Get returns the decoded profile stored under id, via the decoded cache.
func (s *Store) Get(id string) (*sampler.Profile, error) {
	s.mu.Lock()
	if p, ok := s.cache[id]; ok {
		s.cacheHits++
		s.mu.Unlock()
		s.m.cacheHits.Inc()
		return p, nil
	}
	s.cacheMiss++
	s.m.cacheMisses.Inc()
	ref, ok := s.blobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: no blob %s", id)
	}
	r, err := s.readerLocked(ref.segment)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}

	blob := make([]byte, ref.size)
	if _, err := r.ReadAt(blob, ref.offset); err != nil {
		return nil, fmt.Errorf("store: read blob %s: %w", id, err)
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != id {
		return nil, fmt.Errorf("store: blob %s failed content verification", id)
	}
	p, err := profilefmt.Unmarshal(blob)
	if err != nil {
		return nil, fmt.Errorf("store: decode blob %s: %w", id, err)
	}
	s.mu.Lock()
	s.cacheAddLocked(id, p)
	s.mu.Unlock()
	return p, nil
}

// GetBlob returns the raw encoded bytes stored under id, verified against
// the content hash but not decoded. Replication copies blobs with it so a
// receiving replica stores the byte-identical frame (and therefore the same
// ID) as the sender.
func (s *Store) GetBlob(id string) ([]byte, error) {
	s.mu.Lock()
	ref, ok := s.blobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: no blob %s", id)
	}
	r, err := s.readerLocked(ref.segment)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	blob := make([]byte, ref.size)
	if _, err := r.ReadAt(blob, ref.offset); err != nil {
		return nil, fmt.Errorf("store: read blob %s: %w", id, err)
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != id {
		return nil, fmt.Errorf("store: blob %s failed content verification", id)
	}
	return blob, nil
}

// readerLocked returns a shared read handle for a segment; ReadAt is safe
// for concurrent readers.
func (s *Store) readerLocked(segment int) (faultfs.File, error) {
	if r, ok := s.readers[segment]; ok {
		return r, nil
	}
	r, err := s.fsys.Open(s.segmentPath(segment))
	if err != nil {
		return nil, err
	}
	s.readers[segment] = r
	return r, nil
}

func (s *Store) cacheAddLocked(id string, p *sampler.Profile) {
	if _, ok := s.cache[id]; ok {
		return
	}
	for len(s.cache) >= s.opts.CacheCap && len(s.cacheOrder) > 0 {
		evict := s.cacheOrder[0]
		s.cacheOrder = s.cacheOrder[1:]
		delete(s.cache, evict)
	}
	s.cache[id] = p
	s.cacheOrder = append(s.cacheOrder, id)
	s.m.cacheEntries.Set(float64(len(s.cache)))
}

// Lookup returns the entry stored under a (workload, label, run) key.
func (s *Store) Lookup(workload string, label Label, run string) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[entryKey(workload, label, run)]
	if !ok {
		return nil, false
	}
	cp := *e
	return &cp, true
}

// runLess orders run ids naturally for the common numeric case (shorter
// strings first, then lexicographic), matching the bug registry's ID order.
func runLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

func (s *Store) labeled(workload string, label Label) []*Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Entry
	for _, e := range s.byWl[workload] {
		if e.Label == label {
			cp := *e
			out = append(out, &cp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Run != out[j].Run {
			return runLess(out[i].Run, out[j].Run)
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Baselines returns the workload's rolling baseline corpus: its most recent
// BaselineCap normal entries, in run order.
func (s *Store) Baselines(workload string) []*Entry {
	out := s.labeled(workload, LabelNormal)
	if len(out) > s.opts.BaselineCap {
		// Most recent = highest Seq; keep those, restore run order.
		sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
		out = out[:s.opts.BaselineCap]
		sort.Slice(out, func(i, j int) bool {
			if out[i].Run != out[j].Run {
				return runLess(out[i].Run, out[j].Run)
			}
			return out[i].Seq < out[j].Seq
		})
	}
	return out
}

// Candidates returns the workload's candidate entries, in run order.
func (s *Store) Candidates(workload string) []*Entry {
	return s.labeled(workload, LabelCandidate)
}

// Entries returns every entry for a workload (all labels) in Seq order, or
// — when workload is empty — every entry in the store, grouped by workload
// name. The cluster tier enumerates replicas with it during rebalance and
// read-repair.
func (s *Store) Entries(workload string) []*Entry {
	s.mu.RLock()
	names := make([]string, 0, len(s.byWl))
	if workload != "" {
		if _, ok := s.byWl[workload]; ok {
			names = append(names, workload)
		}
	} else {
		for wl := range s.byWl {
			names = append(names, wl)
		}
	}
	var out []*Entry
	sort.Strings(names)
	for _, wl := range names {
		for _, e := range s.byWl[wl] {
			cp := *e
			out = append(out, &cp)
		}
	}
	s.mu.RUnlock()
	return out
}

// WorkloadInfo summarizes one workload's holdings.
type WorkloadInfo struct {
	Workload   string `json:"workload"`
	Normals    int    `json:"normals"`
	Candidates int    `json:"candidates"`
	Baselines  int    `json:"baselines"`
}

// Workloads lists every workload with stored entries, sorted by name.
func (s *Store) Workloads() []WorkloadInfo {
	s.mu.RLock()
	names := make([]string, 0, len(s.byWl))
	for wl := range s.byWl {
		names = append(names, wl)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]WorkloadInfo, 0, len(names))
	for _, wl := range names {
		info := WorkloadInfo{Workload: wl}
		info.Normals = len(s.labeled(wl, LabelNormal))
		info.Candidates = len(s.labeled(wl, LabelCandidate))
		b := len(s.Baselines(wl))
		info.Baselines = b
		out = append(out, info)
	}
	return out
}

// CacheStats reports decoded-cache hit/miss counters.
func (s *Store) CacheStats() CacheStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return CacheStats{Hits: s.cacheHits, Misses: s.cacheMiss, Entries: len(s.cache)}
}

// Flush forces both append handles to stable storage — the final step of a
// graceful shutdown. With the default options every acknowledged push is
// already durable; Flush covers NoSync stores and belt-and-braces drains.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifest == nil || s.seg == nil {
		return errors.New("store: closed")
	}
	if err := s.seg.Sync(); err != nil {
		return fmt.Errorf("store: flush segment: %w", err)
	}
	if err := s.manifest.Sync(); err != nil {
		return fmt.Errorf("store: flush manifest: %w", err)
	}
	if s.sketchLog != nil {
		if err := s.sketchLog.Sync(); err != nil {
			return fmt.Errorf("store: flush sketch log: %w", err)
		}
	}
	return nil
}

// Health verifies the store is writable: both append handles are open, the
// manifest syncs, and the directory is still present. It is the substance
// behind the service's /healthz check.
func (s *Store) Health() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.manifest == nil || s.seg == nil {
		return errors.New("store: closed")
	}
	if s.broken != nil {
		return fmt.Errorf("store: wedged by failed rollback: %w", s.broken)
	}
	if err := s.manifest.Sync(); err != nil {
		return fmt.Errorf("store: manifest not writable: %w", err)
	}
	if _, err := s.fsys.Stat(s.dir); err != nil {
		return fmt.Errorf("store: directory missing: %w", err)
	}
	return nil
}

// Close releases file handles. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.manifest != nil {
		keep(s.manifest.Close())
		s.manifest = nil
	}
	if s.seg != nil {
		keep(s.seg.Close())
		s.seg = nil
	}
	if s.sketchLog != nil {
		keep(s.sketchLog.Close())
		s.sketchLog = nil
	}
	for _, r := range s.readers {
		keep(r.Close())
	}
	s.readers = map[int]faultfs.File{}
	return first
}
