package vprof_test

import (
	"context"
	"errors"
	"testing"

	vprof "vprof"
)

// TestAnalyzeRequestEquivalence pins the API contract: AnalyzeRequest with
// every parameter/worker-count option produces byte-for-byte identical
// reports, and the sketch mode produces the identical calibrated ranking.
func TestAnalyzeRequestEquivalence(t *testing.T) {
	prog := compileFacade(t)
	sch := prog.GenerateSchema(vprof.SchemaOptions{})
	normal := []*vprof.Profile{prog.Profile(vprof.RunSpec{Inputs: []int64{40}, MaxTicks: 200000}, sch)}
	buggy := []*vprof.Profile{prog.Profile(vprof.RunSpec{Inputs: []int64{90}, MaxTicks: 200000}, sch)}

	req := vprof.AnalyzeRequest{Program: prog, Schema: sch, Normal: normal, Buggy: buggy}
	base, err := vprof.AnalyzeContext(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Render(10)

	cases := map[string][]vprof.AnalyzeOption{
		"WithParams(default)": {vprof.WithParams(vprof.DefaultParams())},
		"WithWorkers(1)":      {vprof.WithWorkers(1)},
		"WithWorkers(4)":      {vprof.WithWorkers(4)},
		"params then workers": {vprof.WithParams(vprof.DefaultParams()), vprof.WithWorkers(3)},
		"WithSketches(false)": {vprof.WithSketches(false)},
	}
	for name, opts := range cases {
		report, err := vprof.AnalyzeContext(context.Background(), req, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := report.Render(10); got != want {
			t.Errorf("%s: report differs from the plain AnalyzeRequest form.\ngot:\n%s\nwant:\n%s", name, got, want)
		}
	}

	// Sketch mode: same functions, same order, same calibrated costs — only
	// the block localization (absent from sketches) may differ.
	sk, err := vprof.AnalyzeContext(context.Background(), req, vprof.WithSketches(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(sk.Funcs) != len(base.Funcs) {
		t.Fatalf("sketch mode ranked %d funcs, full %d", len(sk.Funcs), len(base.Funcs))
	}
	for i := range base.Funcs {
		f, g := base.Funcs[i], sk.Funcs[i]
		if f.Name != g.Name || f.Rank != g.Rank || f.Calibrated != g.Calibrated || f.Discount != g.Discount {
			t.Fatalf("sketch rank %d differs: full %s (cal %v, disc %v) vs sketch %s (cal %v, disc %v)",
				i, f.Name, f.Calibrated, f.Discount, g.Name, g.Calibrated, g.Discount)
		}
	}
}

// TestWithWorkersPreservesParams checks the option composes instead of
// resetting earlier parameter choices.
func TestWithWorkersPreservesParams(t *testing.T) {
	p := vprof.DefaultParams()
	p.PValue = 0.01
	req := vprof.AnalyzeRequest{}
	for _, opt := range []vprof.AnalyzeOption{vprof.WithParams(p), vprof.WithWorkers(2)} {
		opt(&req)
	}
	if req.Params == nil || req.Params.PValue != 0.01 || req.Params.Workers != 2 {
		t.Fatalf("params after options = %+v, want PValue 0.01 Workers 2", req.Params)
	}
}

// TestDiagnoseContextCancellation: a canceled context aborts the profiling
// fan-out and surfaces ctx.Err(); a background context reproduces Diagnose
// byte for byte.
func TestDiagnoseContextCancellation(t *testing.T) {
	prog := compileFacade(t)
	sch := prog.GenerateSchema(vprof.SchemaOptions{})
	normalSpec := vprof.RunSpec{Inputs: []int64{40}, MaxTicks: 200000}
	buggySpec := vprof.RunSpec{Inputs: []int64{90}, MaxTicks: 200000}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := vprof.DiagnoseContext(ctx, prog, sch, normalSpec, buggySpec, 3, vprof.DefaultParams()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled DiagnoseContext error = %v, want context.Canceled", err)
	}

	want, err := vprof.Diagnose(prog, sch, normalSpec, buggySpec, 3, vprof.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got, err := vprof.DiagnoseContext(context.Background(), prog, sch, normalSpec, buggySpec, 3, vprof.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got.Render(10) != want.Render(10) {
		t.Fatalf("DiagnoseContext(Background) differs from Diagnose.\ngot:\n%s\nwant:\n%s", got.Render(10), want.Render(10))
	}
}

// TestProfileContextCancellation: a canceled context cuts the run off at
// the next sampling alarm, returning the partial profile and ctx.Err().
func TestProfileContextCancellation(t *testing.T) {
	prog := compileFacade(t)
	sch := prog.GenerateSchema(vprof.SchemaOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := vprof.RunSpec{Inputs: []int64{90}, MaxTicks: 200000}
	p, err := prog.ProfileContext(ctx, spec, sch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ProfileContext error = %v, want context.Canceled", err)
	}
	full := prog.Profile(spec, sch)
	if p.NumAlarms >= full.NumAlarms {
		t.Fatalf("canceled profile saw %d alarms, full run %d — run was not cut off", p.NumAlarms, full.NumAlarms)
	}
}
