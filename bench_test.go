package vprof_test

// Benchmarks regenerating every table and figure of the paper's evaluation
// (run with `go test -bench=. -benchmem`), plus ablation benches for the
// design choices DESIGN.md calls out and micro-benchmarks of the hot paths.
//
// Quality metrics are attached with b.ReportMetric: "diagnosed" counts
// issues whose root cause ranks in the top five (the paper's headline
// metric), "rank" reports a specific workload's root-cause rank.

import (
	"fmt"
	"testing"

	"vprof/internal/analysis"
	"vprof/internal/baselines"
	"vprof/internal/bugs"
	"vprof/internal/harness"
	"vprof/internal/sampler"
	"vprof/internal/stats"
	"vprof/internal/vm"
)

// --- Tables ---

func BenchmarkTable1Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(harness.Table1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3Diagnosis runs the full Table 3 protocol per workload
// (vProf 5+5 runs, hist-disc ablation, all five baselines), once with the
// sequential legacy path and once with an 8-way worker pool. The workers=8
// variant is what the parallel analysis engine buys on a multi-core runner;
// outputs are identical either way, so "rank" must match across variants.
func BenchmarkTable3Diagnosis(b *testing.B) {
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for _, w := range bugs.All() {
				w := w
				b.Run(w.ID, func(b *testing.B) {
					var lastRank int
					for i := 0; i < b.N; i++ {
						row, err := harness.DiagnoseWorkloadWorkers(w, workers)
						if err != nil {
							b.Fatal(err)
						}
						lastRank = row.VProfRank
					}
					b.ReportMetric(float64(lastRank), "rank")
				})
			}
		})
	}
}

// BenchmarkParallelDiscount isolates the analysis stage: profiles are
// collected once outside the timed loop, then the variable discounter +
// cost attribution re-run per iteration at each pool size. This is the
// kernel the worker-pool fan-out and the pooled stats scratch buffers
// target.
func BenchmarkParallelDiscount(b *testing.B) {
	w := bugs.ByID("b1")
	built := w.MustBuild()
	const runs = 5
	var normal, buggy []*sampler.Profile
	for i := 0; i < runs; i++ {
		np, _ := built.ProfileNormal(i)
		bp, _ := built.ProfileBuggy(i)
		normal = append(normal, np)
		buggy = append(buggy, bp)
	}
	in := analysis.Input{
		Debug:  built.Prog.Debug,
		Schema: built.Schema,
		Normal: normal,
		Buggy:  buggy,
	}
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := analysis.DefaultParams()
			p.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := analysis.Analyze(in, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable4Unresolved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cases, err := harness.Table4()
		if err != nil {
			b.Fatal(err)
		}
		found := 0
		for _, c := range cases {
			if c.RootFound {
				found++
			}
		}
		b.ReportMetric(float64(found), "diagnosed")
	}
}

func BenchmarkTable5Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 15 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// --- Figures ---

func BenchmarkFigure6ValueSamples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := harness.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 2 {
			b.Fatalf("%d series", len(series))
		}
	}
}

func BenchmarkFigure7Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure7(1)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rows {
			if r.VProfRatio > worst {
				worst = r.VProfRatio
			}
		}
		b.ReportMetric(worst, "worst-overhead-ratio")
	}
}

func BenchmarkFigure8Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		// Report the default setting's score (DefaultDiscount 0.8).
		for _, p := range res.DefaultDiscount {
			if p.Setting > 0.79 && p.Setting < 0.81 {
				b.ReportMetric(float64(p.Diagnosed), "diagnosed")
			}
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// benchDiagnoseAll runs the vProf pipeline over all 15 workloads with the
// given parameters and sampler options, reporting the top-5 count.
func benchDiagnoseAll(b *testing.B, params analysis.Params, opts sampler.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		diagnosed, classified := 0, 0
		for _, w := range bugs.All() {
			built, err := w.Build()
			if err != nil {
				b.Fatal(err)
			}
			in := analysis.Input{Debug: built.Prog.Debug, Schema: built.Schema}
			for run := 0; run < 5; run++ {
				nres := sampler.ProfileRun(built.NormalProg, built.NormalMeta, w.NormalConfig(run), opts)
				bres := sampler.ProfileRun(built.Prog, built.Meta, w.BuggyConfig(run), opts)
				in.Normal = append(in.Normal, sampler.MergeProfiles(nres.Profiles))
				in.Buggy = append(in.Buggy, sampler.MergeProfiles(bres.Profiles))
			}
			rep, err := analysis.Analyze(in, params)
			if err != nil {
				b.Fatal(err)
			}
			if r := rep.Rank(w.RootFunc); r >= 1 && r <= 5 {
				diagnosed++
			}
			if fr := rep.Func(w.RootFunc); fr != nil && w.PaperClassified && fr.Pattern == w.Pattern {
				classified++
			}
		}
		b.ReportMetric(float64(diagnosed), "diagnosed")
		b.ReportMetric(float64(classified), "classified")
	}
}

// BenchmarkAblationUnwindDepth varies the virtual-stack-unwinding bound
// (paper default 3; -1 disables). Shallower unwinding loses the caller value
// samples that promote root causes.
func BenchmarkAblationUnwindDepth(b *testing.B) {
	for _, depth := range []int{-1, 1, 3, 5} {
		depth := depth
		name := "disabled"
		switch depth {
		case 1:
			name = "depth1"
		case 3:
			name = "depth3"
		case 5:
			name = "depth5"
		}
		b.Run(name, func(b *testing.B) {
			benchDiagnoseAll(b, analysis.DefaultParams(),
				sampler.Options{Interval: bugs.DefaultInterval, UnwindDepth: depth})
		})
	}
}

// BenchmarkAblationVarCost disables the variable-based execution cost
// (paper §5.1's caller cost inheritance).
func BenchmarkAblationVarCost(b *testing.B) {
	for _, disable := range []bool{false, true} {
		disable := disable
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			p := analysis.DefaultParams()
			p.DisableVarCost = disable
			benchDiagnoseAll(b, p, sampler.Options{Interval: bugs.DefaultInterval})
		})
	}
}

// BenchmarkAblationDimensions restricts the discounter to the value
// dimension only (the paper motivates deltas and processing costs).
func BenchmarkAblationDimensions(b *testing.B) {
	for _, valueOnly := range []bool{false, true} {
		valueOnly := valueOnly
		name := "all3"
		if valueOnly {
			name = "valueOnly"
		}
		b.Run(name, func(b *testing.B) {
			p := analysis.DefaultParams()
			p.DimensionsValueOnly = valueOnly
			benchDiagnoseAll(b, p, sampler.Options{Interval: bugs.DefaultInterval})
		})
	}
}

// BenchmarkAblationHistDiscounter disables the hist-discounter (Table 3's
// comparison showed it matters for functions without monitored variables).
func BenchmarkAblationHistDiscounter(b *testing.B) {
	for _, disable := range []bool{false, true} {
		disable := disable
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			p := analysis.DefaultParams()
			p.DisableHistDiscounter = disable
			benchDiagnoseAll(b, p, sampler.Options{Interval: bugs.DefaultInterval})
		})
	}
}

// BenchmarkAblationInterval varies the sampling interval: denser sampling
// costs more but gathers more value samples.
func BenchmarkAblationInterval(b *testing.B) {
	for _, interval := range []int64{31, 97, 331, 997} {
		interval := interval
		b.Run(fmt.Sprintf("every%d", interval), func(b *testing.B) {
			benchDiagnoseAll(b, analysis.DefaultParams(), sampler.Options{Interval: interval})
		})
	}
}

// --- Baseline tool benches (cost of each Table 2 tool on one workload) ---

func BenchmarkBaselines(b *testing.B) {
	built, err := bugs.ByID("b4").Build()
	if err != nil {
		b.Fatal(err)
	}
	tools := []struct {
		name string
		run  func(*baselines.Target) *baselines.Result
	}{
		{"gprof", baselines.Gprof},
		{"perf", baselines.Perf},
		{"perf-PT", baselines.PerfPT},
		{"COZ", baselines.Coz},
		{"stat-debug", baselines.StatDebug},
	}
	for _, tool := range tools {
		tool := tool
		b.Run(tool.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := tool.run(built.Target()); res == nil {
					b.Fatal("nil result")
				}
			}
		})
	}
}

// --- Micro-benchmarks of the hot paths ---

func BenchmarkVMExecution(b *testing.B) {
	built, err := bugs.ByID("b1").Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := built.W.NormalConfig(0)
	b.ResetTimer()
	var ticks int64
	for i := 0; i < b.N; i++ {
		m := vm.New(built.Prog, cfg)
		_ = m.Run()
		ticks += m.Ticks()
		m.Recycle()
	}
	b.ReportMetric(float64(ticks)/float64(b.N), "ticks/run")
}

// BenchmarkEngineExec runs every workload's buggy configuration on both
// execution engines — the before/after for the register engine across the
// full harness suite (geomean of the per-workload ratios is the headline
// speedup in BENCH_vm.json).
func BenchmarkEngineExec(b *testing.B) {
	all := append(bugs.All(), bugs.UnresolvedIssues()...)
	for _, engine := range []string{vm.EngineTree, vm.EngineRegister} {
		for _, w := range all {
			engine, w := engine, w
			b.Run(w.ID+"/"+engine, func(b *testing.B) {
				built, err := w.Build()
				if err != nil {
					b.Fatal(err)
				}
				cfg := built.W.BuggyConfig(0)
				cfg.Engine = engine
				b.ResetTimer()
				var ticks int64
				for i := 0; i < b.N; i++ {
					m := vm.New(built.Prog, cfg)
					_ = m.Run()
					ticks += m.Ticks()
					m.Recycle()
				}
				b.ReportMetric(float64(ticks)/float64(b.N), "ticks/run")
			})
		}
	}
}

func BenchmarkProfiledExecution(b *testing.B) {
	built, err := bugs.ByID("b1").Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sampler.ProfileRun(built.Prog, built.Meta, built.W.NormalConfig(0),
			sampler.Options{Interval: bugs.DefaultInterval})
		if len(res.Profiles) == 0 {
			b.Fatal("no profiles")
		}
	}
}

func BenchmarkProfilerInit(b *testing.B) {
	built, err := bugs.ByID("b1").Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := sampler.New(built.Prog, built.Meta, sampler.Options{})
		if p.NumVarNodes() == 0 {
			b.Fatal("no variable nodes")
		}
	}
}

func BenchmarkADKSample(b *testing.B) {
	x := make([]float64, 500)
	y := make([]float64, 500)
	for i := range x {
		x[i] = float64(i % 37)
		y[i] = float64((i*7 + 3) % 41)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.ADKSample(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHellinger(b *testing.B) {
	x := make([]float64, 2000)
	y := make([]float64, 2000)
	for i := range x {
		x[i] = float64(i % 97)
		y[i] = float64((i * 13) % 89)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Hellinger(x, y)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	built, err := bugs.ByID("b1").Build()
	if err != nil {
		b.Fatal(err)
	}
	in := analysis.Input{Debug: built.Prog.Debug, Schema: built.Schema}
	for run := 0; run < 5; run++ {
		np, _ := built.ProfileNormal(run)
		bp, _ := built.ProfileBuggy(run)
		in.Normal = append(in.Normal, np)
		in.Buggy = append(in.Buggy, bp)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Analyze(in, analysis.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}
