package vprof_test

import (
	"strings"
	"testing"

	vprof "vprof"
)

const facadeSrc = `
var pool_pages;

func costly_apply() {
	work(450);
	return 0;
}

func scan_batch(available_mem, batch) {
	work(150);
	if (available_mem <= 0) {
		return false;
	}
	if (batch >= 40) {
		return true;
	}
	return false;
}

func recover_log(ckpt) {
	var available_mem = pool_pages - (pool_pages / 3) * 3;
	var batch = ckpt;
	while (!scan_batch(available_mem, batch)) {
		costly_apply();
		batch = batch + 1;
		if (batch > 40) {
			batch = 0;
		}
	}
	return batch;
}

func main() {
	pool_pages = input(0);
	recover_log(0);
}
`

func compileFacade(t *testing.T) *vprof.Program {
	t.Helper()
	prog, err := vprof.Compile("facade.vp", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestCompileAndRun(t *testing.T) {
	prog := compileFacade(t)
	if len(prog.Functions()) != 4 {
		t.Errorf("functions = %v", prog.Functions())
	}
	if prog.TextSize() == 0 {
		t.Error("empty text section")
	}
	_, ticks, err := prog.Run(vprof.RunSpec{Inputs: []int64{40}})
	if err != nil {
		t.Fatal(err)
	}
	if ticks == 0 {
		t.Error("no simulated time consumed")
	}
}

func TestCompileError(t *testing.T) {
	if _, err := vprof.Compile("bad.vp", "func main() { undeclared(); }"); err == nil {
		t.Fatal("expected compile error")
	}
	if _, err := vprof.Compile("bad.vp", "not a program"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSchemaGeneration(t *testing.T) {
	prog := compileFacade(t)
	sch := prog.GenerateSchema(vprof.SchemaOptions{})
	if sch.Lookup("#global", "pool_pages") == nil {
		t.Error("global not monitored")
	}
	if sch.Lookup("recover_log", "available_mem") == nil {
		t.Error("conditional variable not monitored")
	}
	text := vprof.FormatSchema(sch)
	if !strings.Contains(text, "available_mem") {
		t.Errorf("schema format missing variable:\n%s", text)
	}
	// Component restriction.
	restricted := prog.GenerateSchema(vprof.SchemaOptions{Functions: []string{"scan_batch"}})
	if restricted.Lookup("recover_log", "available_mem") != nil {
		t.Error("component filter ignored")
	}
}

func TestProfileAndMetadata(t *testing.T) {
	prog := compileFacade(t)
	sch := prog.GenerateSchema(vprof.SchemaOptions{})
	if len(prog.Metadata(sch)) == 0 {
		t.Fatal("no variable metadata")
	}
	p := prog.Profile(vprof.RunSpec{Inputs: []int64{40}}, sch)
	if p.NumAlarms == 0 || len(p.Samples) == 0 {
		t.Fatalf("profile empty: %d alarms, %d samples", p.NumAlarms, len(p.Samples))
	}
}

func TestDiagnoseEndToEnd(t *testing.T) {
	prog := compileFacade(t)
	sch := prog.GenerateSchema(vprof.SchemaOptions{})
	report, err := vprof.Diagnose(prog, sch,
		vprof.RunSpec{Inputs: []int64{40}, MaxTicks: 200000},
		vprof.RunSpec{Inputs: []int64{90}, MaxTicks: 200000},
		3, vprof.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rank := report.Rank("recover_log")
	if rank == 0 || rank > 2 {
		t.Errorf("root cause rank = %d\n%s", rank, report.Render(0))
	}
	fr := report.Func("recover_log")
	if fr.Pattern != vprof.PatternWrongConstraint {
		t.Errorf("pattern = %v, want WrongConstraint", fr.Pattern)
	}
	if !strings.Contains(report.Render(3), "recover_log") {
		t.Error("render missing root cause")
	}
}

func TestDebugInfoAccess(t *testing.T) {
	prog := compileFacade(t)
	d := prog.Debug()
	if d.FuncNamed("recover_log") == nil {
		t.Fatal("debug info lacks function")
	}
	if len(d.FuncNamed("recover_log").Blocks) < 3 {
		t.Error("too few basic blocks")
	}
}

func TestDisassemble(t *testing.T) {
	prog := compileFacade(t)
	text := prog.Disassemble()
	for _, want := range []string{"func recover_log", "bb0", "call", "jz", "; line"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}
