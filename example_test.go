package vprof_test

import (
	"context"
	"fmt"
	"log"

	vprof "vprof"
)

// The misleading-profile situation in miniature: driver (the root cause)
// loops forever because its threshold is wrongly zero, spending all its
// time in the necessary expensive_worker.
const exampleSource = `
var threshold;

func expensive_worker(n) {
	work(400);
	return n - 1;
}

func driver(rounds) {
	var processed = 0;
	for (var r = 0; r < rounds; r++) {
		var todo = 10;
		while (todo > threshold) {
			todo = expensive_worker(todo);
		}
		processed++;
	}
	return processed;
}

func main() {
	threshold = input(0);
	driver(input(1));
}
`

// ExampleCompile shows compiling a target program and inspecting it.
func ExampleCompile() {
	prog, err := vprof.Compile("example.vp", exampleSource)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog.Functions())
	// Output: [expensive_worker driver main]
}

// ExampleProgram_GenerateSchema shows the paper's §3.1 variable selection.
func ExampleProgram_GenerateSchema() {
	prog, err := vprof.Compile("example.vp", exampleSource)
	if err != nil {
		log.Fatal(err)
	}
	sch := prog.GenerateSchema(vprof.SchemaOptions{})
	fmt.Print(vprof.FormatSchema(sch))
	// Output:
	// example.vp, #global, 2, threshold, int, cond
	// example.vp, driver, 11, r, int, loop|cond
	// example.vp, driver, 9, rounds, int, cond|args
	// example.vp, driver, 12, todo, int, loop|cond|args
	// example.vp, expensive_worker, 4, n, int, args
}

// ExampleAnalyzeContext shows the context-first API: profile both
// executions under a cancellable context, then analyze with an
// AnalyzeRequest and options. Canceling ctx would stop the profiling runs
// at the next sampling alarm and drain the analysis workers.
func ExampleAnalyzeContext() {
	prog, err := vprof.Compile("example.vp", exampleSource)
	if err != nil {
		log.Fatal(err)
	}
	sch := prog.GenerateSchema(vprof.SchemaOptions{})
	ctx := context.Background()
	normal, err := prog.ProfileContext(ctx, vprof.RunSpec{Inputs: []int64{8, 40}}, sch)
	if err != nil {
		log.Fatal(err)
	}
	buggy, err := prog.ProfileContext(ctx, vprof.RunSpec{Inputs: []int64{0, 40}}, sch)
	if err != nil {
		log.Fatal(err)
	}
	report, err := vprof.AnalyzeContext(ctx, vprof.AnalyzeRequest{
		Program: prog,
		Schema:  sch,
		Normal:  []*vprof.Profile{normal},
		Buggy:   []*vprof.Profile{buggy},
	}, vprof.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("driver rank:", report.Rank("driver"))
	fmt.Println("discount:", report.Func("driver").Discount)
	// Output:
	// driver rank: 1
	// discount: 0
}

// ExampleDiagnose runs the full Figure 2 workflow and reports where the true
// root cause ranks.
func ExampleDiagnose() {
	prog, err := vprof.Compile("example.vp", exampleSource)
	if err != nil {
		log.Fatal(err)
	}
	sch := prog.GenerateSchema(vprof.SchemaOptions{})
	report, err := vprof.Diagnose(prog, sch,
		vprof.RunSpec{Inputs: []int64{8, 40}}, // normal: threshold 8
		vprof.RunSpec{Inputs: []int64{0, 40}}, // buggy: threshold 0
		3, vprof.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("driver rank:", report.Rank("driver"))
	fmt.Println("discount:", report.Func("driver").Discount)
	// Output:
	// driver rank: 1
	// discount: 0
}
