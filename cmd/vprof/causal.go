package main

import (
	"context"
	"flag"
	"fmt"
	"strconv"
	"strings"

	vprof "vprof"
	"vprof/internal/bugs"
	"vprof/internal/causal"
	"vprof/internal/service"
)

// cmdCausal runs Coz-style virtual-speedup experiments: re-execute the
// workload with one candidate's tick costs scaled down and measure the
// end-to-end runtime change, sweeping a range of speedup factors per
// candidate. The target is a .vp program file or a reproduced-issue id
// (b1..b15, u1..u3); with -server the sweep runs on a vprof service.
func cmdCausal(args []string) error {
	target, args := splitFileArg(args)
	fs := flag.NewFlagSet("causal", flag.ContinueOnError)
	speedups := fs.String("speedups", "", "comma-separated virtual speedup percentages, each in (0,100) (default 10,25,50,75,90,95)")
	gran := fs.String("granularity", "func", "experiment granularity: func (inclusive) or block (exclusive)")
	funcs := fs.String("funcs", "", "comma-separated candidate functions (bypasses the exclusive-share gate)")
	workers := fs.Int("workers", 0, "experiment worker pool (0 = VPROF_WORKERS or GOMAXPROCS, 1 = sequential)")
	top := fs.Int("top", 10, "ranking rows to print")
	curve := fs.String("curve", "", "also print the named candidate's full speedup curve")
	server := fs.String("server", "", "run the sweep on a vprof service at this base URL")
	inputs := fs.String("inputs", "", "comma-separated workload inputs (local .vp targets)")
	seed := fs.Uint64("seed", 1, "PRNG seed (local .vp targets)")
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := engine(); err != nil {
		return err
	}
	target, err := fileArg(target, fs, "causal")
	if err != nil {
		return usageError{fmt.Errorf("causal: need one program file or workload id")}
	}
	percents, err := parsePercents(*speedups)
	if err != nil {
		return usageError{err}
	}
	var fns []string
	if *funcs != "" {
		fns = strings.Split(*funcs, ",")
	}

	if *server != "" {
		c := service.NewClient(*server)
		resp, err := c.Causal(service.CausalRequest{
			Workload:    target,
			Speedups:    percents,
			Granularity: *gran,
			Funcs:       fns,
			Top:         *top,
		})
		if err != nil {
			return err
		}
		fmt.Print(resp.Render)
		if *curve != "" {
			return printCurveFrom(resp.Curves, *curve)
		}
		return nil
	}

	granularity, err := causal.ParseGranularity(*gran)
	if err != nil {
		return usageError{err}
	}
	var fractions []float64
	for _, p := range percents {
		fractions = append(fractions, p/100)
	}
	opts := causal.Options{
		Speedups:    fractions,
		Granularity: granularity,
		Funcs:       fns,
		Workers:     *workers,
	}

	var rep *causal.Report
	if w := bugs.ByID(target); w != nil && !strings.HasSuffix(target, ".vp") {
		b, err := w.Build()
		if err != nil {
			return err
		}
		rep, err = causal.Run(context.Background(), b.Prog, w.BuggyConfig(0), opts)
		if err != nil {
			return err
		}
	} else {
		prog, err := compileFile(target)
		if err != nil {
			return err
		}
		in, err := parseInputs(*inputs)
		if err != nil {
			return usageError{err}
		}
		rep, err = prog.Causal(vprof.RunSpec{Inputs: in, Seed: *seed}, opts)
		if err != nil {
			return err
		}
	}
	fmt.Print(causal.Render(rep, *top))
	if *curve != "" {
		return printCurveFrom(rep.Curves, *curve)
	}
	return nil
}

// parsePercents parses a comma-separated speedup percentage list, each in
// (0,100). Empty means the engine default.
func parsePercents(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad speedup %q: %w", part, err)
		}
		if v <= 0 || v >= 100 {
			return nil, fmt.Errorf("speedup %v%% outside (0,100)", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// printCurveFrom prints one candidate's full speedup curve from an already
// computed sweep.
func printCurveFrom(curves []causal.Curve, name string) error {
	for i := range curves {
		if curves[i].Name == name {
			fmt.Println()
			fmt.Print(causal.RenderCurve(&curves[i]))
			return nil
		}
	}
	return fmt.Errorf("causal: no curve for %q (gated out or unknown; try -funcs %s)", name, name)
}
