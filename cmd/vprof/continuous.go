// Continuous-mode subcommands: a profile-store daemon (serve), a profiling
// uploader (push), and a query front end (query). Together they turn the
// one-shot profile/analyze workflow into a service: many clients push
// normal and candidate runs concurrently, and diagnoses run server-side
// against each workload's stored baseline corpus.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	vprof "vprof"
	"vprof/internal/cluster"
	"vprof/internal/obs"
	"vprof/internal/parallel"
	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
	"vprof/internal/service"
	"vprof/internal/store"
)

// buildResolver assembles the serve resolver: explicitly listed programs
// shadow the built-in bug registry; with no programs the registry is the
// default so `vprof serve` works out of the box.
func buildResolver(progFiles []string, useBugs bool) (service.Resolver, error) {
	var rs []service.Resolver
	if len(progFiles) > 0 {
		pr, err := service.NewProgramResolver(progFiles)
		if err != nil {
			return nil, err
		}
		rs = append(rs, pr)
	}
	if useBugs || len(progFiles) == 0 {
		rs = append(rs, service.NewBugsResolver())
	}
	return service.NewMultiResolver(rs...), nil
}

// parseClusterSpec turns "-cluster id=url,id2=url2" into node references.
// IDs must be unique: placement hashes the ID, so a duplicate would silently
// halve the replica count for every shard the pair owns.
func parseClusterSpec(spec string) ([]cluster.NodeRef, error) {
	var refs []cluster.NodeRef
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, base, ok := strings.Cut(part, "=")
		if !ok || id == "" || base == "" {
			return nil, fmt.Errorf("serve: bad -cluster entry %q (want id=http://host:port)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("serve: duplicate cluster node id %q", id)
		}
		seen[id] = true
		refs = append(refs, cluster.NodeRef{ID: id, Base: strings.TrimRight(base, "/")})
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("serve: -cluster lists no nodes")
	}
	return refs, nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	storeDir := fs.String("store", "vprof-store", "profile store directory")
	clusterSpec := fs.String("cluster", "", `route to cluster nodes instead of a local store: "id=http://host:port,id2=url2,..."`)
	replicas := fs.Int("replicas", 3, "cluster copies per shard (clamped to node count)")
	writeQuorum := fs.Int("write-quorum", 0, "cluster acks required per ingest (0 = majority of replicas)")
	shards := fs.Int("shards", cluster.DefaultShards, "cluster keyspace partitions (all routers must agree)")
	useBugs := fs.Bool("bugs", false, "also serve the built-in bug workloads (default when no programs are given)")
	workers := fs.Int("workers", 4, "bounded ingest/diagnose worker pool size")
	analysisWorkers := fs.Int("analysis-workers", 0, "per-diagnosis analysis worker pool (0 = VPROF_WORKERS or GOMAXPROCS, 1 = sequential)")
	top := fs.Int("top", 10, "default report rows")
	baselineCap := fs.Int("baseline-cap", 16, "rolling baseline corpus size per workload")
	requestTimeout := fs.Duration("request-timeout", 0, "per-request deadline (0 = none)")
	maxQueue := fs.Int("max-queue", 0, "admission queue bound before shedding with 429 (0 = default)")
	sketches := fs.Bool("sketches", false, "serve diagnoses from persisted per-variable sketches (incremental path)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on SIGTERM")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log encoding: text or json")
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := engine(); err != nil {
		return err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return usageError{err}
	}
	logger, err := obs.NewLogger(os.Stderr, level, *logFormat)
	if err != nil {
		return usageError{err}
	}

	// One registry spans the whole process: HTTP + diagnose series from the
	// service, segment/cache series from the store, fan-out series from the
	// analysis worker pool, self-profiling series from the sampler. All of
	// it is exposed at GET /metrics.
	reg := obs.NewRegistry()
	parallel.Instrument(reg)
	sampler.Instrument(reg)

	cfg := service.Config{
		Workers:         *workers,
		AnalysisWorkers: *analysisWorkers, Top: *top,
		RequestTimeout: *requestTimeout, MaxQueue: *maxQueue,
		Sketches: *sketches,
		Metrics:  reg, Logger: logger,
	}
	backendDesc := "store " + *storeDir
	if *clusterSpec != "" {
		// Cluster mode: this process owns no store — it shards, replicates
		// and merges across the listed node processes.
		refs, err := parseClusterSpec(*clusterSpec)
		if err != nil {
			return usageError{err}
		}
		router, err := cluster.NewRouter(cluster.RouterConfig{
			Nodes: refs, Replicas: *replicas, WriteQuorum: *writeQuorum,
			Shards: *shards, BaselineCap: *baselineCap,
			Metrics: reg, Logger: logger,
		})
		if err != nil {
			return err
		}
		cfg.Backend = router
		backendDesc = fmt.Sprintf("cluster of %d node(s)", len(refs))
	} else {
		st, err := store.Open(*storeDir, store.Options{BaselineCap: *baselineCap, Metrics: reg})
		if err != nil {
			return err
		}
		defer st.Close()
		if rec := st.Recovery(); rec != nil && !rec.Clean() {
			logger.Warn("store recovered at startup",
				"dropped_records", rec.DroppedRecords,
				"quarantined", len(rec.Quarantined),
				"truncated_bytes", rec.TruncatedBytes)
		}
		cfg.Store = st
	}
	resolver, err := buildResolver(fs.Args(), *useBugs)
	if err != nil {
		return usageError{err}
	}
	cfg.Resolver = resolver
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("vprof service listening", "addr", ln.Addr().String(), "backend", backendDesc)
	fmt.Printf("vprof service listening on http://%s (%s)\n", ln.Addr(), backendDesc)

	// Serve until the listener fails or a termination signal arrives. On
	// SIGTERM/SIGINT the service drains: new requests are refused with 503,
	// in-flight work gets -drain-timeout to finish, the store is flushed,
	// and only then do the connections close.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		logger.Info("shutting down", "drain_timeout", drainTimeout.String())
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			logger.Error("drain incomplete", "err", err)
			hs.Close()
			return err
		}
		if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		logger.Info("shutdown complete")
		return nil
	}
}

func cmdPush(args []string) error {
	file, args := splitFileArg(args)
	fs := flag.NewFlagSet("push", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:7070", "service base URL")
	workload := fs.String("workload", "", "workload name (default: program base name)")
	label := fs.String("label", "", "normal (baseline) or candidate (suspected buggy)")
	dir := fs.String("dir", "", "push existing artifacts from this directory instead of profiling")
	run := fs.String("run", "", "run id (required with -dir; default 0..runs-1 when profiling)")
	runs := fs.Int("runs", 1, "profiling runs to push")
	inputs := fs.String("inputs", "", "comma-separated workload inputs")
	seed := fs.Uint64("seed", 1, "PRNG seed of the first run")
	maxTicks := fs.Int64("max-ticks", 0, "tick budget per run (0 = default)")
	interval := fs.Int64("interval", sampler.DefaultInterval, "sampling interval in ticks")
	funcs := fs.String("funcs", "", "comma-separated component functions to monitor")
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := engine(); err != nil {
		return err
	}
	lb, err := store.ParseLabel(*label)
	if err != nil {
		return usageError{err}
	}
	client := service.NewClient(*server)

	// Mode 1: push artifacts previously written by `vprof profile -out`.
	if *dir != "" {
		if *workload == "" || *run == "" {
			return usageError{fmt.Errorf("push -dir needs -workload and -run")}
		}
		profiles, err := profilefmt.ReadDir(*dir)
		if err != nil {
			return err
		}
		if len(profiles) == 0 {
			return fmt.Errorf("no profiles in %s", *dir)
		}
		res, err := client.Push(*workload, lb, *run, sampler.MergeProfiles(profiles))
		if err != nil {
			return err
		}
		printPush(res)
		return nil
	}

	// Mode 2: profile the program locally and push each run.
	if file == "" && fs.NArg() == 1 {
		file = fs.Arg(0)
	}
	if file == "" {
		return usageError{fmt.Errorf("push: need a program file or -dir")}
	}
	wl := *workload
	if wl == "" {
		wl = strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
	}
	prog, err := compileFile(file)
	if err != nil {
		return err
	}
	in, err := parseInputs(*inputs)
	if err != nil {
		return err
	}
	sch := prog.GenerateSchema(schemaOpts(*funcs, false))
	for i := 0; i < *runs; i++ {
		// Per-run phase/seed variation, as the offline Diagnose does.
		spec := vprof.RunSpec{
			Inputs:     in,
			Seed:       *seed + uint64(i*1000003),
			MaxTicks:   *maxTicks,
			AlarmPhase: int64(7 * i),
			Interval:   *interval,
		}
		id := fmt.Sprint(i)
		if *run != "" {
			id = *run
			if *runs > 1 {
				id = fmt.Sprintf("%s-%d", *run, i)
			}
		}
		res, err := client.Push(wl, lb, id, prog.Profile(spec, sch))
		if err != nil {
			return err
		}
		printPush(res)
	}
	return nil
}

func printPush(res *service.PushResult) {
	state := "stored"
	if res.Dup {
		state = "deduplicated"
	}
	fmt.Printf("%s %s/%s run %s as %s\n", state, res.Workload, res.Label, res.Run, res.ID[:12])
}

func cmdQuery(args []string) error {
	if len(args) == 0 {
		return usageError{fmt.Errorf("query: need a subcommand (workloads, diagnose, report, stats)")}
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("query "+sub, flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:7070", "service base URL")
	workload := fs.String("workload", "", "workload to diagnose")
	candidates := fs.String("candidates", "", "comma-separated candidate run ids (default: all)")
	top := fs.Int("top", 10, "report rows")
	sketches := fs.Bool("sketches", false, "diagnose via the server's persisted sketches (incremental path)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	client := service.NewClient(*server)
	switch sub {
	case "workloads":
		infos, err := client.Workloads()
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %8s %11s %10s\n", "workload", "normals", "candidates", "baselines")
		for _, info := range infos {
			fmt.Printf("%-20s %8d %11d %10d\n", info.Workload, info.Normals, info.Candidates, info.Baselines)
		}
		return nil
	case "diagnose":
		if *workload == "" {
			return usageError{fmt.Errorf("query diagnose: -workload is required")}
		}
		req := service.DiagnoseRequest{Workload: *workload, Top: *top, Sketches: *sketches}
		if *candidates != "" {
			req.Candidates = strings.Split(*candidates, ",")
		}
		resp, err := client.Diagnose(req)
		if err != nil {
			return err
		}
		fmt.Println(resp.Summary())
		fmt.Print(resp.Render)
		return nil
	case "report":
		if fs.NArg() != 1 {
			return usageError{fmt.Errorf("query report: need exactly one report id")}
		}
		resp, err := client.Report(fs.Arg(0))
		if err != nil {
			return err
		}
		fmt.Println(resp.Summary())
		fmt.Print(resp.Render)
		return nil
	case "stats":
		st, err := client.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("ingested %d (deduped %d, rejected %d) across %d workloads\n",
			st.Ingested, st.Deduped, st.Rejected, st.Workloads)
		fmt.Printf("diagnoses %d, memo cache hits %d\n", st.Diagnoses, st.DiagnoseCacheHits)
		fmt.Printf("decode cache: %d hits, %d misses, %d resident\n",
			st.DecodeCache.Hits, st.DecodeCache.Misses, st.DecodeCache.Entries)
		fmt.Printf("worker pool: %d slots\n", st.Workers)
		return nil
	}
	return usageError{fmt.Errorf("query: unknown subcommand %q", sub)}
}
