// The fsck subcommand: offline integrity checking and repair for a profile
// store directory. It is the disaster-recovery entry point documented in
// README.md — run it after a crash or suspected corruption, before (or
// instead of) restarting `vprof serve`.
package main

import (
	"flag"
	"fmt"
	"strings"

	"vprof/internal/store"
)

// cmdFsck checks (and with -repair, repairs) a profile store. Exit codes
// follow fsck convention rather than the generic 0/1/2 of the other
// subcommands:
//
//	0 — store is clean
//	1 — issues were found (and repaired when -repair was given)
//	2 — store is unrecoverable or the check itself failed
func cmdFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ContinueOnError)
	storeDir := fs.String("store", "vprof-store", "profile store directory (with -cluster: comma-separated node store directories)")
	repair := fs.Bool("repair", false, "apply repairs (truncate torn tails, quarantine corrupt segments)")
	clusterMode := fs.Bool("cluster", false, "check every node store listed in -store, exiting with the worst result")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usageError{fmt.Errorf("fsck: unexpected argument %q", fs.Arg(0))}
	}

	check := store.Fsck
	if *repair {
		check = store.Repair
	}
	dirs := []string{*storeDir}
	if *clusterMode {
		dirs = dirs[:0]
		for _, d := range strings.Split(*storeDir, ",") {
			if d = strings.TrimSpace(d); d != "" {
				dirs = append(dirs, d)
			}
		}
		if len(dirs) == 0 {
			return usageError{fmt.Errorf("fsck: -cluster needs node directories in -store")}
		}
	}
	worst := 0
	var firstErr error
	for _, dir := range dirs {
		if *clusterMode {
			fmt.Printf("== %s ==\n", dir)
		}
		report, err := check(dir)
		if err != nil {
			// The directory is missing or unreadable: nothing to repair.
			if !*clusterMode {
				return exitError{code: 2, err: err}
			}
			fmt.Printf("fsck: %v\n", err)
			worst = 2
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		fmt.Print(report.Render())
		if !report.Clean() && worst < 1 {
			worst = 1
		}
	}
	if worst == 0 {
		return nil
	}
	return exitError{code: worst, err: firstErr}
}
