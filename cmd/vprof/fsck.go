// The fsck subcommand: offline integrity checking and repair for a profile
// store directory. It is the disaster-recovery entry point documented in
// README.md — run it after a crash or suspected corruption, before (or
// instead of) restarting `vprof serve`.
package main

import (
	"flag"
	"fmt"

	"vprof/internal/store"
)

// cmdFsck checks (and with -repair, repairs) a profile store. Exit codes
// follow fsck convention rather than the generic 0/1/2 of the other
// subcommands:
//
//	0 — store is clean
//	1 — issues were found (and repaired when -repair was given)
//	2 — store is unrecoverable or the check itself failed
func cmdFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ContinueOnError)
	storeDir := fs.String("store", "vprof-store", "profile store directory")
	repair := fs.Bool("repair", false, "apply repairs (truncate torn tails, quarantine corrupt segments)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usageError{fmt.Errorf("fsck: unexpected argument %q", fs.Arg(0))}
	}

	check := store.Fsck
	if *repair {
		check = store.Repair
	}
	report, err := check(*storeDir)
	if err != nil {
		// The directory is missing or unreadable: nothing to repair.
		return exitError{code: 2, err: err}
	}
	fmt.Print(report.Render())
	if report.Clean() {
		return nil
	}
	return exitError{code: 1}
}
