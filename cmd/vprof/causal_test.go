package main

import (
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vprof/internal/service"
	"vprof/internal/store"
)

// captureStderrText runs fn with os.Stderr redirected and returns what it wrote
// plus fn's return value.
func captureStderrText(t *testing.T, fn func() int) (string, int) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = old }()
	codeCh := make(chan int, 1)
	go func() { codeCh <- fn() }()
	code := <-codeCh
	w.Close()
	out, _ := io.ReadAll(r)
	return string(out), code
}

func writeCausalFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "twophase.vp")
	src := `
func hot() { work(8000); return 0; }
func cold() { work(5000); return 0; }
func driver() {
  var i = 0;
  while (i < 5) { hot(); i = i + 1; }
  cold(); cold();
}
func main() { driver(); }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCausalCommandLocalFile(t *testing.T) {
	path := writeCausalFixture(t)
	out := captureStdout(t, func() error {
		return cmdCausal([]string{path, "-speedups", "50,95", "-workers", "1", "-curve", "hot"})
	})
	if !strings.Contains(out, "hot") || !strings.Contains(out, "causal profile") {
		t.Fatalf("local sweep output missing ranking:\n%s", out)
	}
	if !strings.Contains(out, "optimize") || !strings.Contains(out, "end-to-end") {
		t.Fatalf("missing rendered speedup curve:\n%s", out)
	}
}

func TestCausalCommandBugID(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdCausal([]string{"b3", "-speedups", "95", "-top", "3"})
	})
	if !strings.Contains(out, "row_upd_check_references") {
		t.Fatalf("b3 sweep does not surface the root cause:\n%s", out)
	}
}

func TestCausalCommandServer(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := service.New(service.Config{Store: st, Resolver: service.NewBugsResolver(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	out := captureStdout(t, func() error {
		return cmdCausal([]string{"b3", "-server", hs.URL, "-speedups", "95", "-top", "3"})
	})
	if !strings.Contains(out, "row_upd_check_references") {
		t.Fatalf("server sweep does not surface the root cause:\n%s", out)
	}
}

func TestCausalExitCodes(t *testing.T) {
	path := writeCausalFixture(t)

	// 0: a successful sweep.
	if _, code := captureStderrText(t, func() int {
		out, _ := captureStdoutErr(t, func() error {
			return cmdCausal([]string{path, "-speedups", "95", "-workers", "1"})
		})
		if out == "" {
			t.Error("successful sweep printed nothing")
		}
		return run([]string{"causal", path, "-speedups", "95", "-workers", "1"})
	}); code != 0 {
		t.Errorf("successful sweep: exit %d, want 0", code)
	}

	// 2: command-line mistakes.
	for _, args := range [][]string{
		{"causal"},                               // no target
		{"causal", path, "-speedups", "150"},     // percentage out of range
		{"causal", path, "-granularity", "line"}, // unknown granularity
		{"causal", path, "-no-such-flag"},        // unknown flag
	} {
		if _, code := captureStderrText(t, func() int { return run(args) }); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
	}

	// 1: execution failures (missing file, unreachable server).
	if _, code := captureStderrText(t, func() int {
		return run([]string{"causal", filepath.Join(t.TempDir(), "missing.vp")})
	}); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if _, code := captureStderrText(t, func() int {
		return run([]string{"causal", "b3", "-server", "http://127.0.0.1:1"})
	}); code != 1 {
		t.Errorf("unreachable server: exit %d, want 1", code)
	}
}

func TestUnknownCommandListsCausal(t *testing.T) {
	stderr, code := captureStderrText(t, func() int { return run([]string{"nosuchcmd"}) })
	if code != 2 {
		t.Fatalf("unknown command: exit %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown command "nosuchcmd"`) {
		t.Errorf("missing unknown-command diagnostic:\n%s", stderr)
	}
	if !strings.Contains(stderr, "causal") || !strings.Contains(stderr, "diagnose") {
		t.Errorf("command list missing causal/diagnose:\n%s", stderr)
	}
	// The usage text advertises the subcommand too.
	if !strings.Contains(stderr, "vprof causal <prog.vp|bug-id>") {
		t.Errorf("usage text missing causal line:\n%s", stderr)
	}
}
