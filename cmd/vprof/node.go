// The node subcommand: one member of a vprof cluster. A node is a thin
// internal-API server over a local profile store; the public front end is a
// separate `vprof serve -cluster` process that shards, replicates, and
// merges across nodes. Nodes are trusted infrastructure — they bind to
// internal addresses and speak only to routers.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vprof/internal/cluster"
	"vprof/internal/obs"
	"vprof/internal/store"
)

func cmdNode(args []string) error {
	fs := flag.NewFlagSet("node", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7081", "listen address (internal API)")
	storeDir := fs.String("store", "vprof-node", "profile store directory")
	id := fs.String("id", "", "stable node name (required; placement hashes it)")
	baselineCap := fs.Int("baseline-cap", 16, "rolling baseline corpus size per workload")
	useBugs := fs.Bool("bugs", false, "resolve the built-in bug workloads for corpus folding (default when no programs are given)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on SIGTERM")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log encoding: text or json")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *id == "" {
		return usageError{fmt.Errorf("node: -id is required (stable across restarts)")}
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return usageError{err}
	}
	logger, err := obs.NewLogger(os.Stderr, level, *logFormat)
	if err != nil {
		return usageError{err}
	}

	reg := obs.NewRegistry()
	st, err := store.Open(*storeDir, store.Options{BaselineCap: *baselineCap, Metrics: reg})
	if err != nil {
		return err
	}
	defer st.Close()
	if rec := st.Recovery(); rec != nil && !rec.Clean() {
		logger.Warn("node store recovered at startup",
			"dropped_records", rec.DroppedRecords,
			"quarantined", len(rec.Quarantined),
			"truncated_bytes", rec.TruncatedBytes)
	}
	resolver, err := buildResolver(fs.Args(), *useBugs)
	if err != nil {
		return usageError{err}
	}
	node, err := cluster.NewNode(cluster.NodeConfig{
		ID: *id, Store: st, Resolver: resolver, Logger: logger, Metrics: reg,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("vprof node listening", "id", *id, "addr", ln.Addr().String(), "store", *storeDir)
	fmt.Printf("vprof node %s listening on http://%s (store %s)\n", *id, ln.Addr(), *storeDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: node.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		stop()
		logger.Info("node shutting down", "drain_timeout", drainTimeout.String())
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(drainCtx); err != nil {
			hs.Close()
		}
		if err := st.Flush(); err != nil {
			return err
		}
		logger.Info("node shutdown complete")
		return nil
	}
}
