package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"vprof/internal/service"
	"vprof/internal/store"
	"vprof/internal/vm"
)

// captureStdout runs fn with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	out, err := captureStdoutErr(t, fn)
	if err != nil {
		t.Fatalf("command failed: %v", err)
	}
	return out
}

// captureStdoutErr is captureStdout for commands whose error carries an
// intentional exit code (lint/check convention).
func captureStdoutErr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errCh := make(chan error, 1)
	go func() { errCh <- fn() }()
	ferr := <-errCh
	w.Close()
	out, _ := io.ReadAll(r)
	return string(out), ferr
}

func TestParseInputs(t *testing.T) {
	got, err := parseInputs(" 1, 2 ,30")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 30 {
		t.Fatalf("parseInputs = %v, %v", got, err)
	}
	if got, err := parseInputs(""); err != nil || got != nil {
		t.Fatalf("empty inputs = %v, %v", got, err)
	}
	if _, err := parseInputs("1,x"); err == nil {
		t.Fatal("expected error for non-numeric input")
	}
}

func TestSplitFileArg(t *testing.T) {
	file, rest := splitFileArg([]string{"prog.vp", "-inputs", "4"})
	if file != "prog.vp" || len(rest) != 2 {
		t.Fatalf("split = %q %v", file, rest)
	}
	file, rest = splitFileArg([]string{"-inputs", "4", "prog.vp"})
	if file != "" || len(rest) != 3 {
		t.Fatalf("flag-first split = %q %v", file, rest)
	}
	file, rest = splitFileArg(nil)
	if file != "" || rest != nil {
		t.Fatalf("empty split = %q %v", file, rest)
	}
}

func TestFileArg(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.Parse([]string{"prog.vp"})
	if f, err := fileArg("", fs, "t"); err != nil || f != "prog.vp" {
		t.Fatalf("trailing file: %q %v", f, err)
	}
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	fs2.Parse(nil)
	if f, err := fileArg("pre.vp", fs2, "t"); err != nil || f != "pre.vp" {
		t.Fatalf("leading file: %q %v", f, err)
	}
	if _, err := fileArg("", fs2, "t"); err == nil {
		t.Fatal("missing file accepted")
	}
	fs3 := flag.NewFlagSet("t", flag.ContinueOnError)
	fs3.Parse([]string{"a.vp"})
	if _, err := fileArg("b.vp", fs3, "t"); err == nil {
		t.Fatal("two files accepted")
	}
}

func TestSchemaOpts(t *testing.T) {
	opts := schemaOpts("f,g", true)
	if !opts.SkipGlobals || len(opts.Functions) != 2 {
		t.Fatalf("opts = %+v", opts)
	}
	if opts := schemaOpts("", false); opts.Functions != nil {
		t.Fatalf("empty funcs: %+v", opts)
	}
}

// TestSubcommandsEndToEnd drives the real subcommand functions against the
// checked-in example program.
func TestSubcommandsEndToEnd(t *testing.T) {
	prog := "../../testdata/recovery.vp"
	if err := cmdSchema([]string{prog}); err != nil {
		t.Fatalf("schema: %v", err)
	}
	if err := cmdRun([]string{prog, "-inputs", "40"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	nDir := t.TempDir()
	bDir := t.TempDir()
	if err := cmdProfile([]string{prog, "-inputs", "40", "-max-ticks", "200000", "-out", nDir}); err != nil {
		t.Fatalf("profile normal: %v", err)
	}
	if err := cmdProfile([]string{prog, "-inputs", "90", "-max-ticks", "200000", "-out", bDir}); err != nil {
		t.Fatalf("profile buggy: %v", err)
	}
	if err := cmdAnalyze([]string{prog, "-normal", nDir, "-buggy", bDir, "-top", "3"}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if err := cmdAnalyze([]string{prog, "-normal", nDir}); err == nil {
		t.Fatal("analyze without -buggy accepted")
	}
	if err := cmdDiagnose([]string{prog, "-normal", "40", "-buggy", "90", "-runs", "2", "-max-ticks", "200000"}); err != nil {
		t.Fatalf("diagnose: %v", err)
	}
}

// TestSchemaScoreAndVerify drives the new schema flags against the spill
// workload, whose frame layout forces both DWARF failure modes.
func TestSchemaScoreAndVerify(t *testing.T) {
	prog := "../../testdata/spill.vp"
	scored := captureStdout(t, func() error {
		return cmdSchema([]string{prog, "-score"})
	})
	// Scored lines carry 7 comma-separated fields.
	firstLine := strings.SplitN(scored, "\n", 2)[0]
	if got := len(strings.Split(firstLine, ",")); got != 7 {
		t.Errorf("scored line has %d fields, want 7: %q", got, firstLine)
	}
	// Deterministic output.
	if again := captureStdout(t, func() error {
		return cmdSchema([]string{prog, "-score"})
	}); again != scored {
		t.Error("schema -score output not deterministic")
	}

	verify := captureStdout(t, func() error {
		return cmdSchema([]string{prog, "-verify"})
	})
	if !strings.Contains(verify, "schema/DWARF coverage:") {
		t.Fatalf("-verify printed no coverage report:\n%s", verify)
	}
	if !strings.Contains(verify, "NO location info") {
		t.Errorf("-verify missed the stack-spill variable:\n%s", verify)
	}
	if !strings.Contains(verify, "gaps at") {
		t.Errorf("-verify missed the caller-saved location gaps:\n%s", verify)
	}

	pruned := captureStdout(t, func() error {
		return cmdSchema([]string{prog, "-score", "-max-entries", "3"})
	})
	if !strings.Contains(pruned, "pruned by score") {
		t.Errorf("pruning stats missing:\n%s", pruned)
	}
	lines := 0
	for _, l := range strings.Split(pruned, "\n") {
		if l != "" && !strings.HasPrefix(l, "#") {
			lines++
		}
	}
	if lines != 3 {
		t.Errorf("-max-entries 3 printed %d entries:\n%s", lines, pruned)
	}
}

func TestLintCommand(t *testing.T) {
	out, err := captureStdoutErr(t, func() error {
		return cmdLint([]string{"../../testdata/spill.vp"})
	})
	if !strings.Contains(out, "lint:") {
		t.Fatalf("lint output:\n%s", out)
	}
	// The spill workload has no-location and location-gap findings.
	if !strings.Contains(out, "no-location") || !strings.Contains(out, "location-gap") {
		t.Errorf("lint missed coverage findings:\n%s", out)
	}
	// Findings drive the exit code now, like check: 1 when warnings fired.
	var xe exitError
	if !errors.As(err, &xe) || xe.code != 1 {
		t.Errorf("lint with findings returned %v, want exit code 1", err)
	}
	if err := cmdLint(nil); err == nil {
		t.Error("lint without a file accepted")
	}
}

func TestCheckCommand(t *testing.T) {
	// The smells demo trips warning-severity rules: exit code 1.
	out, err := captureStdoutErr(t, func() error {
		return cmdCheck([]string{"../../testdata/smells.vp", "-costs"})
	})
	var xe exitError
	if !errors.As(err, &xe) || xe.code != 1 {
		t.Fatalf("check on smells.vp returned %v, want exit code 1", err)
	}
	if !strings.Contains(out, "check:") || !strings.Contains(out, "quadratic-nest") {
		t.Errorf("check output missing findings:\n%s", out)
	}
	if !strings.Contains(out, ": cost ") {
		t.Errorf("-costs printed no cost bounds:\n%s", out)
	}

	// Multi-file runs merge into one report.
	multi, _ := captureStdoutErr(t, func() error {
		return cmdCheck([]string{"../../testdata/smells.vp", "../../testdata/recovery.vp"})
	})
	if strings.Count(multi, "check:") != 1 {
		t.Errorf("multi-file check printed %d headers, want 1:\n%s", strings.Count(multi, "check:"), multi)
	}
	if !strings.Contains(multi, "recovery.vp") || !strings.Contains(multi, "smells.vp") {
		t.Errorf("merged report missing a file:\n%s", multi)
	}

	// Flags may trail the file list: flag parsing must resume after files.
	trail, err := captureStdoutErr(t, func() error {
		return cmdCheck([]string{"../../testdata/smells.vp", "../../testdata/recovery.vp", "-costs"})
	})
	if !errors.As(err, &xe) || xe.code != 1 {
		t.Fatalf("trailing -costs: err = %v, want exit code 1", err)
	}
	if !strings.Contains(trail, "recovery.vp: cost ") || !strings.Contains(trail, "smells.vp: cost ") {
		t.Errorf("trailing -costs printed no bounds for both files:\n%s", trail)
	}

	if err := cmdCheck(nil); err == nil {
		t.Error("check without a file accepted")
	}
}

// captureStderr silences run()'s usage spam during exit-code tests.
func captureStderr(t *testing.T, fn func() int) int {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = old }()
	code := fn()
	w.Close()
	io.Copy(io.Discard, r)
	return code
}

// TestExitCodes pins the satellite fix: unknown subcommands and flags exit
// non-zero with a usage message instead of falling through.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{nil, 2},                                     // no subcommand
		{[]string{"frobnicate"}, 2},                  // unknown subcommand
		{[]string{"run", "-no-such-flag"}, 2},        // unknown flag
		{[]string{"run"}, 2},                         // missing program file
		{[]string{"run", "a.vp", "b.vp"}, 2},         // too many program files
		{[]string{"query"}, 2},                       // missing query subcommand
		{[]string{"query", "wat"}, 2},                // unknown query subcommand
		{[]string{"push", "-label", "x"}, 2},         // bad label
		{[]string{"run", "no-such-file.vp"}, 1},      // execution failure
		{[]string{"serve", "-log-level", "loud"}, 2}, // bad log level
		{[]string{"serve", "-log-format", "xml"}, 2}, // bad log encoding
		{[]string{"help"}, 0},
		{[]string{"--help"}, 0},
		{[]string{"run", "-h"}, 0}, // flag-level help is not an error
	}
	for _, tc := range cases {
		got := captureStderr(t, func() int { return run(tc.args) })
		if got != tc.want {
			t.Errorf("run(%q) = %d, want %d", tc.args, got, tc.want)
		}
	}
}

// TestExitCodeClassification pins the 0/1/2 convention: help is success,
// usage mistakes are 2, and every execution failure — including the typed
// service sentinels — is 1.
func TestExitCodeClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"flag help", flag.ErrHelp, 0},
		{"usage", usageError{errors.New("bad flag")}, 2},
		{"wrapped usage", fmt.Errorf("serve: %w", usageError{errors.New("bad level")}), 2},
		{"plain failure", errors.New("boom"), 1},
		{"not found", fmt.Errorf("query: %w", service.ErrNotFound), 1},
		{"invalid bundle", fmt.Errorf("push: %w", service.ErrInvalidBundle), 1},
		{"baseline missing", service.ErrBaselineMissing, 1},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("%s: exitCode(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestPushQueryEndToEnd drives the push and query subcommands against an
// in-process service daemon serving the checked-in example program.
func TestPushQueryEndToEnd(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	resolver, err := buildResolver([]string{"../../testdata/recovery.vp"}, false)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := service.New(service.Config{Store: st, Resolver: resolver})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	prog := "../../testdata/recovery.vp"
	pushOut := captureStdout(t, func() error {
		return cmdPush([]string{prog, "-server", hs.URL, "-label", "normal",
			"-inputs", "40", "-runs", "2", "-max-ticks", "200000"})
	})
	if strings.Count(pushOut, "stored") != 2 {
		t.Fatalf("push output:\n%s", pushOut)
	}
	captureStdout(t, func() error {
		return cmdPush([]string{prog, "-server", hs.URL, "-label", "buggy",
			"-inputs", "90", "-max-ticks", "200000"})
	})
	// Artifact-directory mode: profile to disk, then push the directory.
	dir := t.TempDir()
	if err := cmdProfile([]string{prog, "-inputs", "90", "-max-ticks", "200000", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	dirOut := captureStdout(t, func() error {
		return cmdPush([]string{"-server", hs.URL, "-label", "candidate",
			"-workload", "recovery", "-run", "disk", "-dir", dir})
	})
	if !strings.Contains(dirOut, "recovery/candidate run disk") {
		t.Fatalf("dir push output:\n%s", dirOut)
	}

	wls := captureStdout(t, func() error {
		return cmdQuery([]string{"workloads", "-server", hs.URL})
	})
	if !strings.Contains(wls, "recovery") {
		t.Fatalf("workloads output:\n%s", wls)
	}
	diag := captureStdout(t, func() error {
		return cmdQuery([]string{"diagnose", "-server", hs.URL, "-workload", "recovery", "-top", "5"})
	})
	if !strings.Contains(diag, "report r-") || !strings.Contains(diag, "2 candidates") {
		t.Fatalf("diagnose output:\n%s", diag)
	}
	// Second diagnosis is memoized; stats show the hit.
	diag2 := captureStdout(t, func() error {
		return cmdQuery([]string{"diagnose", "-server", hs.URL, "-workload", "recovery", "-top", "5"})
	})
	if !strings.Contains(diag2, "(cached)") {
		t.Fatalf("second diagnose not cached:\n%s", diag2)
	}
	stats := captureStdout(t, func() error {
		return cmdQuery([]string{"stats", "-server", hs.URL})
	})
	if !strings.Contains(stats, "memo cache hits 1") {
		t.Fatalf("stats output:\n%s", stats)
	}
	// Report id round trip.
	id := strings.TrimSuffix(strings.Fields(diag)[1], ":")
	rep := captureStdout(t, func() error {
		return cmdQuery([]string{"report", "-server", hs.URL, id})
	})
	if !strings.Contains(rep, "workload recovery") {
		t.Fatalf("report output:\n%s", rep)
	}
}

// TestEngineFlag pins the -engine plumbing: both engines produce the
// identical run output (they are tick-for-tick equivalent), the flag
// resets the process default, and a bad engine name is a usage error.
func TestEngineFlag(t *testing.T) {
	prog := "../../testdata/recovery.vp"
	prev := vm.DefaultEngine()
	defer vm.SetDefaultEngine(prev)

	treeOut := captureStdout(t, func() error {
		return cmdRun([]string{prog, "-inputs", "40", "-engine", "tree"})
	})
	regOut := captureStdout(t, func() error {
		return cmdRun([]string{prog, "-inputs", "40", "-engine", "register"})
	})
	if treeOut != regOut {
		t.Errorf("run output differs between engines:\n--- tree ---\n%s\n--- register ---\n%s", treeOut, regOut)
	}
	if got := vm.DefaultEngine(); got != vm.EngineRegister {
		t.Errorf("default engine after -engine register = %q", got)
	}

	err := cmdRun([]string{prog, "-engine", "quantum"})
	if err == nil {
		t.Fatal("bad engine name accepted")
	}
	if exitCode(err) != 2 {
		t.Errorf("bad engine name: exit code %d, want 2 (usage)", exitCode(err))
	}
}
