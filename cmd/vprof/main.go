// Command vprof is the command-line front end to the value-assisted cost
// profiler, mirroring the paper's workflow (Figure 2):
//
//	vprof schema prog.vp                      # generate the monitoring schema
//	vprof run prog.vp -inputs 40              # execute without profiling
//	vprof profile prog.vp -inputs 40 -out dir # profile one execution to dir
//	vprof diagnose prog.vp -normal 40 -buggy 90 -root hint
//
// diagnose runs the full pipeline: five normal and five buggy profiling
// executions, post-profiling analysis, and the annotated ranking.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	vprof "vprof"
	"vprof/internal/profilefmt"
	"vprof/internal/sampler"
	"vprof/internal/vm"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// commands is the subcommand dispatch table.
var commands = map[string]func([]string) error{
	"schema":   cmdSchema,
	"lint":     cmdLint,
	"check":    cmdCheck,
	"run":      cmdRun,
	"profile":  cmdProfile,
	"disasm":   cmdDisasm,
	"analyze":  cmdAnalyze,
	"diagnose": cmdDiagnose,
	"causal":   cmdCausal,
	"serve":    cmdServe,
	"node":     cmdNode,
	"push":     cmdPush,
	"query":    cmdQuery,
	"fsck":     cmdFsck,
}

// commandNames lists the dispatch table's keys, sorted, for the
// unknown-command diagnostic.
func commandNames() []string {
	names := make([]string, 0, len(commands))
	for name := range commands {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// usageError marks failures that are the caller's command line rather than
// the tool's execution: they print the usage message and exit 2, like an
// unknown flag does.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// exitError carries an explicit process exit code for subcommands whose
// codes mean more than pass/fail — fsck uses 1 for "issues found" and 2
// for "unrecoverable", mirroring the filesystem fsck convention. A nil
// wrapped error means the command already printed its own report.
type exitError struct {
	code int
	err  error
}

func (e exitError) Error() string {
	if e.err != nil {
		return e.err.Error()
	}
	return fmt.Sprintf("exit status %d", e.code)
}
func (e exitError) Unwrap() error { return e.err }

// run dispatches one invocation and returns the process exit code: 0 on
// success, 2 for command-line mistakes (unknown subcommand or flag, missing
// arguments), 1 for execution failures.
func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "help", "-h", "--help":
		usage()
		return 0
	}
	cmd, ok := commands[args[0]]
	if !ok {
		fmt.Fprintf(os.Stderr, "vprof: unknown command %q (commands: %s)\n",
			args[0], strings.Join(commandNames(), ", "))
		usage()
		return 2
	}
	if err := cmd(args[1:]); err != nil {
		var xe exitError
		if errors.As(err, &xe) {
			if xe.err != nil {
				fmt.Fprintf(os.Stderr, "vprof %s: %v\n", args[0], xe.err)
			}
			return xe.code
		}
		switch exitCode(err) {
		case 0:
			return 0
		case 2:
			fmt.Fprintf(os.Stderr, "vprof %s: %v\n", args[0], err)
			usage()
			return 2
		}
		fmt.Fprintf(os.Stderr, "vprof: %v\n", err)
		return 1
	}
	return 0
}

// exitCode derives the process exit code from the error chain alone — no
// message matching: 0 for nil or an explicit help request, 2 for
// command-line mistakes (usageError), 1 for every execution failure. The
// service client's typed sentinels (service.ErrNotFound and friends) are
// execution failures: the command line was fine, the server disagreed.
func exitCode(err error) int {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return 0
	}
	var ue usageError
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

// parseFlags parses a subcommand's flag set, classifying parse failures
// (unknown flags, bad values) as usage errors. The flag package already
// printed its own diagnostic and the subcommand's defaults.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return usageError{err}
	}
	return nil
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  vprof schema <prog.vp> [-funcs f1,f2] [-no-globals] [-score] [-verify]
                         [-min-score x] [-max-entries n] [-static-priors]
  vprof lint <prog.vp>
  vprof check <prog.vp> [prog2.vp ...] [-costs]
  vprof run <prog.vp> [-inputs a,b,...] [-seed n] [-max-ticks n] [-engine e]
  vprof profile <prog.vp> [-inputs ...] [-out dir] [-interval n] [-engine e]
  vprof disasm <prog.vp>
  vprof analyze <prog.vp> -normal dir[,dir...] -buggy dir[,dir...] [-top n] [-workers n]
  vprof diagnose <prog.vp> -normal a,b -buggy a,b [-runs n] [-top n] [-funcs f1,f2]
                 [-workers n] [-engine tree|register]
  vprof causal <prog.vp|bug-id> [-speedups 10,50,95] [-granularity func|block]
               [-funcs f1,f2] [-workers n] [-top n] [-curve f] [-server url]
               [-inputs a,b] [-seed n] [-engine e]
  vprof serve [-addr host:port] [-store dir] [-bugs] [-workers n]
              [-analysis-workers n] [-request-timeout d] [-max-queue n]
              [-drain-timeout d] [-log-level l] [-log-format text|json]
              [-cluster id=url,...] [-replicas n] [-write-quorum n] [-shards n]
              [prog.vp ...]
  vprof node -id name [-addr host:port] [-store dir] [-bugs]
             [-drain-timeout d] [-log-level l] [-log-format text|json]
             [prog.vp ...]
  vprof push <prog.vp> -server url -label normal|candidate [-workload w]
             [-inputs a,b] [-runs n] | push -server url -label l -dir artifacts
  vprof query workloads|diagnose|report|stats -server url [args]
  vprof fsck [-store dir] [-repair] [-cluster]
`)
}

// engineFlag registers -engine on subcommands that execute programs and
// returns an apply func: called after parsing, it installs the choice as
// the process-default execution engine (both engines are tick-for-tick
// equivalent; register is the fast one).
func engineFlag(fs *flag.FlagSet) func() error {
	name := fs.String("engine", "", "execution engine: tree or register (default $VPROF_ENGINE or tree)")
	return func() error {
		if *name == "" {
			return nil
		}
		if _, err := vm.SetDefaultEngine(*name); err != nil {
			return usageError{err}
		}
		return nil
	}
}

// splitFileArg allows the program file to precede the flags (vprof profile
// prog.vp -inputs ...): it pops a leading non-flag argument.
func splitFileArg(args []string) (string, []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}

// fileArg resolves the program file from either position.
func fileArg(pre string, fs *flag.FlagSet, cmd string) (string, error) {
	switch {
	case pre != "" && fs.NArg() == 0:
		return pre, nil
	case pre == "" && fs.NArg() == 1:
		return fs.Arg(0), nil
	}
	return "", usageError{fmt.Errorf("%s: need exactly one program file", cmd)}
}

func compileFile(path string) (*vprof.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return vprof.Compile(path, string(src))
}

func parseInputs(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func schemaOpts(funcs string, noGlobals bool) vprof.SchemaOptions {
	opts := vprof.SchemaOptions{SkipGlobals: noGlobals}
	if funcs != "" {
		opts.Functions = strings.Split(funcs, ",")
	}
	return opts
}

func cmdSchema(args []string) error {
	file, args := splitFileArg(args)
	fs := flag.NewFlagSet("schema", flag.ContinueOnError)
	funcs := fs.String("funcs", "", "comma-separated component functions to monitor")
	noGlobals := fs.Bool("no-globals", false, "do not monitor globals")
	score := fs.Bool("score", false, "append the performance-relevance score to every entry")
	verify := fs.Bool("verify", false, "report per-variable debug-location coverage (gaps, dropped entries)")
	minScore := fs.Float64("min-score", 0, "drop entries scoring below this bound")
	maxEntries := fs.Int("max-entries", 0, "keep only the N highest-scoring entries (0 = all)")
	staticPriors := fs.Bool("static-priors", false, "fold abstract-interpretation value evidence into the relevance scores")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	file, err := fileArg(file, fs, "schema")
	if err != nil {
		return err
	}
	prog, err := compileFile(file)
	if err != nil {
		return err
	}
	opts := schemaOpts(*funcs, *noGlobals)
	opts.MinScore = *minScore
	opts.MaxEntries = *maxEntries
	opts.StaticPriors = *staticPriors
	sch := prog.GenerateSchema(opts)
	if *score {
		fmt.Print(vprof.FormatSchemaScored(sch))
	} else {
		fmt.Print(vprof.FormatSchema(sch))
	}
	fmt.Printf("# %d variables; %d metadata entries", len(sch.Entries), len(prog.Metadata(sch)))
	if sch.Pruned > 0 {
		fmt.Printf("; %d pruned by score", sch.Pruned)
	}
	fmt.Println()
	if *verify {
		fmt.Print(prog.VerifySchema(sch).Render())
	}
	return nil
}

// cmdLint runs the IR-level static checks: unreachable code, exit-less
// loops, constant/dead monitored variables, and debug-location coverage
// problems (the paper's DWARF-gap phenomenon, §3.2).
func cmdLint(args []string) error {
	file, args := splitFileArg(args)
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	file, err := fileArg(file, fs, "lint")
	if err != nil {
		return err
	}
	prog, err := compileFile(file)
	if err != nil {
		return err
	}
	rep := prog.Lint()
	fmt.Print(rep.Render())
	if rep.ExitCode() != 0 {
		return exitError{code: rep.ExitCode()}
	}
	return nil
}

// cmdCheck runs the abstract-interpretation perf-smell checker over one or
// more programs and prints one merged report. Exit codes follow the shared
// lint/check convention: 0 clean, 1 findings at warning severity or above,
// 2 usage errors.
func cmdCheck(args []string) error {
	file, args := splitFileArg(args)
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	costs := fs.Bool("costs", false, "print per-function static cost bounds")
	// Files and flags may interleave (flag parsing stops at the first
	// non-flag argument): gather non-flag args, re-parse the remainder.
	var files []string
	if file != "" {
		files = append(files, file)
	}
	for len(args) > 0 {
		if !strings.HasPrefix(args[0], "-") {
			files = append(files, args[0])
			args = args[1:]
			continue
		}
		if err := parseFlags(fs, args); err != nil {
			return err
		}
		if rest := fs.Args(); len(rest) < len(args) {
			args = rest
		} else { // bare "-": flag parsing consumed nothing
			files = append(files, args[0])
			args = args[1:]
		}
	}
	if len(files) == 0 {
		return usageError{fmt.Errorf("check: need at least one program file")}
	}
	merged := &vprof.CheckReport{Tool: "check"}
	var costLines []string
	for _, path := range files {
		prog, err := compileFile(path)
		if err != nil {
			return err
		}
		merged.Merge(prog.Check())
		if *costs {
			bounds := prog.CostBounds()
			for _, fn := range prog.Functions() {
				costLines = append(costLines, fmt.Sprintf("%s: cost %s: %s", path, fn, bounds[fn]))
			}
		}
	}
	merged.Sort()
	fmt.Print(merged.Render())
	for _, l := range costLines {
		fmt.Println(l)
	}
	if merged.ExitCode() != 0 {
		return exitError{code: merged.ExitCode()}
	}
	return nil
}

func cmdRun(args []string) error {
	file, args := splitFileArg(args)
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	inputs := fs.String("inputs", "", "comma-separated workload inputs")
	seed := fs.Uint64("seed", 1, "PRNG seed")
	maxTicks := fs.Int64("max-ticks", 0, "tick budget (0 = default)")
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := engine(); err != nil {
		return err
	}
	file, err := fileArg(file, fs, "run")
	if err != nil {
		return err
	}
	prog, err := compileFile(file)
	if err != nil {
		return err
	}
	in, err := parseInputs(*inputs)
	if err != nil {
		return err
	}
	outputs, ticks, err := prog.Run(vprof.RunSpec{Inputs: in, Seed: *seed, MaxTicks: *maxTicks})
	for _, v := range outputs {
		fmt.Println(v)
	}
	fmt.Printf("# %d ticks\n", ticks)
	return err
}

func cmdProfile(args []string) error {
	file, args := splitFileArg(args)
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	inputs := fs.String("inputs", "", "comma-separated workload inputs")
	seed := fs.Uint64("seed", 1, "PRNG seed")
	maxTicks := fs.Int64("max-ticks", 0, "tick budget (0 = default)")
	interval := fs.Int64("interval", sampler.DefaultInterval, "sampling interval in ticks")
	outDir := fs.String("out", "", "directory for gmon/gmon_var/layout artifacts")
	funcs := fs.String("funcs", "", "comma-separated component functions to monitor")
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := engine(); err != nil {
		return err
	}
	file, err := fileArg(file, fs, "profile")
	if err != nil {
		return err
	}
	prog, err := compileFile(file)
	if err != nil {
		return err
	}
	in, err := parseInputs(*inputs)
	if err != nil {
		return err
	}
	sch := prog.GenerateSchema(schemaOpts(*funcs, false))
	p := prog.Profile(vprof.RunSpec{Inputs: in, Seed: *seed, MaxTicks: *maxTicks, Interval: *interval}, sch)
	fmt.Printf("profiled: %d alarms, %d value samples, %d monitored variables\n",
		p.NumAlarms, len(p.Samples), len(p.Layout))
	if *outDir != "" {
		if err := profilefmt.WriteDir(*outDir, p); err != nil {
			return err
		}
		fmt.Printf("wrote artifacts to %s\n", *outDir)
	}
	return nil
}

// cmdDisasm prints the compiled text section with function and basic-block
// boundaries and the line table — the view the profiler's PC ranges are
// defined over.
func cmdDisasm(args []string) error {
	file, args := splitFileArg(args)
	fs := flag.NewFlagSet("disasm", flag.ContinueOnError)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	file, err := fileArg(file, fs, "disasm")
	if err != nil {
		return err
	}
	prog, err := compileFile(file)
	if err != nil {
		return err
	}
	fmt.Print(prog.Disassemble())
	return nil
}

// cmdAnalyze runs the offline post-profiling analysis over profile
// directories previously written by `vprof profile -out` (the paper's
// workflow: profile runs dump gmon/gmon_var/layout files; the analyzer is a
// separate step).
func cmdAnalyze(args []string) error {
	file, args := splitFileArg(args)
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	normal := fs.String("normal", "", "comma-separated normal profile directories")
	buggy := fs.String("buggy", "", "comma-separated buggy profile directories")
	top := fs.Int("top", 10, "rows to print")
	funcs := fs.String("funcs", "", "comma-separated component functions (must match the profiling schema)")
	workers := fs.Int("workers", 0, "analysis worker pool (0 = VPROF_WORKERS or GOMAXPROCS, 1 = sequential)")
	sketches := fs.Bool("sketches", false, "analyze via mergeable per-variable sketches (no block localization)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	file, err := fileArg(file, fs, "analyze")
	if err != nil {
		return err
	}
	if *normal == "" || *buggy == "" {
		return fmt.Errorf("analyze: -normal and -buggy directories are required")
	}
	prog, err := compileFile(file)
	if err != nil {
		return err
	}
	sch := prog.GenerateSchema(schemaOpts(*funcs, false))

	load := func(spec string) ([]*vprof.Profile, error) {
		var out []*vprof.Profile
		for _, dir := range strings.Split(spec, ",") {
			profiles, err := profilefmt.ReadDir(strings.TrimSpace(dir))
			if err != nil {
				return nil, err
			}
			if len(profiles) == 0 {
				return nil, fmt.Errorf("no profiles in %s", dir)
			}
			out = append(out, sampler.MergeProfiles(profiles))
		}
		return out, nil
	}
	normals, err := load(*normal)
	if err != nil {
		return err
	}
	buggies, err := load(*buggy)
	if err != nil {
		return err
	}
	report, err := vprof.AnalyzeContext(context.Background(), vprof.AnalyzeRequest{
		Program: prog,
		Schema:  sch,
		Normal:  normals,
		Buggy:   buggies,
	}, vprof.WithWorkers(*workers), vprof.WithSketches(*sketches))
	if err != nil {
		return err
	}
	fmt.Print(report.Render(*top))
	return nil
}

func cmdDiagnose(args []string) error {
	file, args := splitFileArg(args)
	fs := flag.NewFlagSet("diagnose", flag.ContinueOnError)
	normal := fs.String("normal", "", "inputs for the normal execution")
	buggy := fs.String("buggy", "", "inputs for the buggy execution")
	runs := fs.Int("runs", 5, "profiling runs per side")
	top := fs.Int("top", 10, "rows to print")
	maxTicks := fs.Int64("max-ticks", 0, "tick budget per run")
	funcs := fs.String("funcs", "", "comma-separated component functions to monitor")
	root := fs.String("root", "", "known root cause (prints its rank)")
	workers := fs.Int("workers", 0, "profiling/analysis worker pool (0 = VPROF_WORKERS or GOMAXPROCS, 1 = sequential)")
	engine := engineFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := engine(); err != nil {
		return err
	}
	file, err := fileArg(file, fs, "diagnose")
	if err != nil {
		return err
	}
	prog, err := compileFile(file)
	if err != nil {
		return err
	}
	nIn, err := parseInputs(*normal)
	if err != nil {
		return err
	}
	bIn, err := parseInputs(*buggy)
	if err != nil {
		return err
	}
	sch := prog.GenerateSchema(schemaOpts(*funcs, false))
	params := vprof.DefaultParams()
	params.Workers = *workers
	report, err := vprof.Diagnose(prog, sch,
		vprof.RunSpec{Inputs: nIn, MaxTicks: *maxTicks},
		vprof.RunSpec{Inputs: bIn, MaxTicks: *maxTicks},
		*runs, params)
	if err != nil {
		return err
	}
	fmt.Print(report.Render(*top))
	if *root != "" {
		fmt.Printf("\nroot cause %s ranked %d\n", *root, report.Rank(*root))
	}
	return nil
}
