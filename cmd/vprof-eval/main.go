// Command vprof-eval regenerates the paper's evaluation tables and figures
// (§6) from the reproduction workloads.
//
// Usage:
//
//	vprof-eval                  # everything
//	vprof-eval -table 3         # one table (1, 2, 3, 4, 5)
//	vprof-eval -figure 8        # one figure (6, 7, 8)
//	vprof-eval -workers 8       # fan diagnoses out over 8 workers
//
// -workers (default: VPROF_WORKERS, then GOMAXPROCS) bounds the deterministic
// worker pool; every table and figure is byte-for-byte identical for any
// worker count (Figure 7 measures wall-clock overhead and always runs
// sequentially).
package main

import (
	"flag"
	"fmt"
	"os"

	"vprof/internal/harness"
)

func main() {
	table := flag.Int("table", 0, "render only this table (1-5)")
	figure := flag.Int("figure", 0, "render only this figure (6-8)")
	reps := flag.Int("reps", 3, "repetitions for wall-clock overhead measurements")
	workers := flag.Int("workers", 0, "worker pool for diagnoses (0 = VPROF_WORKERS or GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	all := *table == 0 && *figure == 0
	run := func(name string, fn func() (string, error)) {
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vprof-eval: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	if all || *table == 1 {
		run("table 1", func() (string, error) { return harness.Table1(), nil })
	}
	if all || *table == 2 {
		run("table 2", func() (string, error) { return harness.Table2(), nil })
	}
	if all || *table == 3 {
		run("table 3", func() (string, error) {
			text, _, err := harness.Table3Workers(*workers)
			return text, err
		})
	}
	if all || *table == 4 {
		run("table 4", func() (string, error) {
			cases, err := harness.Table4Workers(*workers)
			if err != nil {
				return "", err
			}
			return harness.RenderTable4(cases), nil
		})
	}
	if all || *table == 5 {
		run("table 5", func() (string, error) {
			rows, err := harness.Table5Workers(*workers)
			if err != nil {
				return "", err
			}
			return harness.RenderTable5(rows), nil
		})
	}
	if all || *figure == 6 {
		run("figure 6", func() (string, error) {
			series, err := harness.Figure6()
			if err != nil {
				return "", err
			}
			return harness.RenderFigure6(series), nil
		})
	}
	if all || *figure == 7 {
		run("figure 7", func() (string, error) {
			rows, err := harness.Figure7(*reps)
			if err != nil {
				return "", err
			}
			return harness.RenderFigure7(rows), nil
		})
	}
	if all || *figure == 8 {
		run("figure 8", func() (string, error) {
			res, err := harness.Figure8Workers(*workers)
			if err != nil {
				return "", err
			}
			return harness.RenderFigure8(res), nil
		})
	}
}
