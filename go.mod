module vprof

go 1.22
